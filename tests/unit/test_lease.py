"""Unit tests for the read-lease state machine and its arithmetic.

Covers the sans-I/O pieces the leased read path stands on:
:class:`repro.fd.heartbeat.ReadLease` (grant/renew/expire boundaries —
strict inequalities, matching :class:`HeartbeatTracker`'s convention —
revocation, view-change pruning), the grantor-side gate
(:meth:`ServerProtocol.may_grant_lease`: no grants to suspects or
announced rejoiners, none while paused/rejoining), the drift-bound
arithmetic (``lease_duration + 2*clock_drift_bound < timeout`` strictly,
and the wait-out that charges it), and the ``clock_skew`` fault plan
validation that attacks it.
"""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.messages import RejoinRequest
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.core.tags import Tag
from repro.errors import ConfigurationError
from repro.fd.heartbeat import HeartbeatConfig, ReadLease
from repro.sim.faults import FaultPlan

DUR = 1.0


def full_lease(grantors=(1, 2), epoch=0, at=0.0) -> ReadLease:
    lease = ReadLease(DUR)
    lease.set_required(grantors)
    for grantor in grantors:
        lease.grant(grantor, epoch, at)
    return lease


# ----------------------------------------------------------------------
# ReadLease: grant / renew / expire boundaries
# ----------------------------------------------------------------------


def test_lease_requires_every_grantor():
    lease = ReadLease(DUR)
    lease.set_required([1, 2])
    assert not lease.valid(0.0, epoch=0), "no grants yet"
    lease.grant(1, 0, 0.0)
    assert not lease.valid(0.0, epoch=0), "one of two grantors is not a lease"
    lease.grant(2, 0, 0.0)
    assert lease.valid(0.0, epoch=0)


def test_lease_expiry_threshold_is_strict():
    """A grant aged exactly ``duration`` is still fresh; strictly
    beyond, it has expired — the same convention as the tracker's
    suspicion threshold."""
    lease = full_lease(at=0.0)
    assert lease.valid(DUR, epoch=0), "age == duration: still fresh"
    assert not lease.valid(DUR + 1e-9, epoch=0), "strictly past: expired"


def test_lease_freshest_grant_does_not_carry_the_stalest():
    """Validity is the conjunction: the *oldest* required grant bounds
    the lease, no matter how fresh the others are."""
    lease = ReadLease(DUR)
    lease.set_required([1, 2])
    lease.grant(1, 0, 0.0)
    lease.grant(2, 0, 0.9)
    assert lease.valid(1.0, epoch=0)
    assert not lease.valid(1.0 + 1e-9, epoch=0), "grantor 1's grant expired"


def test_lease_epoch_mismatch_invalidates():
    lease = full_lease(epoch=3, at=0.0)
    assert lease.valid(0.5, epoch=3)
    assert not lease.valid(0.5, epoch=4), "grants are epoch-stamped"
    assert not lease.valid(0.5, epoch=2)


def test_lease_mixed_epoch_grants_never_valid():
    lease = ReadLease(DUR)
    lease.set_required([1, 2])
    lease.grant(1, 0, 0.5)
    lease.grant(2, 1, 0.5)
    assert not lease.valid(0.5, epoch=0)
    assert not lease.valid(0.5, epoch=1)


def test_lease_grant_reports_new_coverage_vs_refresh():
    lease = ReadLease(DUR)
    lease.set_required([1])
    assert lease.grant(1, 0, 0.0) is True, "first grant newly covers"
    assert lease.grant(1, 0, 0.5) is False, "refresh of a live grant"
    assert lease.grant(1, 1, 0.6) is True, "epoch change newly covers"
    # Let the grant age strictly past the duration, then renew.
    assert lease.grant(1, 1, 0.6 + DUR + 1e-9) is True, "renewal after expiry"
    assert lease.grant(99, 0, 0.0) is False, "unknown grantor is ignored"


def test_lease_revoke_kills_validity_immediately():
    lease = full_lease()
    assert lease.valid(0.5, epoch=0)
    lease.revoke(1)
    assert not lease.valid(0.5, epoch=0)
    lease.grant(1, 0, 0.6)
    assert lease.valid(0.6, epoch=0), "a fresh grant re-earns the lease"


def test_lease_reset_forgets_everything():
    lease = full_lease()
    lease.reset()
    assert not lease.valid(0.0, epoch=0)


def test_lease_view_change_prunes_leaving_grantors():
    """A grant held from a server leaving the required set must not be
    able to satisfy a future view that re-includes it."""
    lease = full_lease(grantors=(1, 2), at=0.0)
    lease.set_required([1])
    assert lease.valid(0.5, epoch=0), "shrunk view: remaining grant suffices"
    lease.set_required([1, 2])
    assert not lease.valid(0.5, epoch=0), "2's old grant was dropped, not revived"


def test_lease_empty_required_set_is_vacuously_valid():
    lease = ReadLease(DUR)
    lease.set_required([])
    assert lease.valid(123.0, epoch=7), "a single-server ring has no grantors"


def test_lease_expires_at():
    lease = ReadLease(DUR)
    lease.set_required([1, 2])
    assert lease.expires_at(epoch=0) is None, "missing grant: not even potential"
    lease.grant(1, 0, 0.0)
    lease.grant(2, 0, 0.4)
    assert lease.expires_at(epoch=0) == pytest.approx(DUR), "oldest grant bounds"
    assert lease.expires_at(epoch=1) is None, "wrong epoch: not potential"


def test_lease_duration_must_be_positive():
    with pytest.raises(ValueError):
        ReadLease(0.0)


# ----------------------------------------------------------------------
# Drift-bound arithmetic (HeartbeatConfig)
# ----------------------------------------------------------------------


def test_lease_duration_must_exceed_heartbeat_period():
    with pytest.raises(ConfigurationError):
        HeartbeatConfig(period=0.02, lease_duration=0.02).validate()


def test_lease_drift_bound_inequality_is_strict():
    """``lease_duration + 2*drift`` equal to the timeout must be
    rejected: the lease has to *provably* die before the suspicion that
    would exclude its holder can fire."""
    HeartbeatConfig(
        timeout=0.12, lease_duration=0.08, clock_drift_bound=0.01
    ).validate()  # 0.08 + 0.02 < 0.12: fine
    with pytest.raises(ConfigurationError):
        HeartbeatConfig(
            timeout=0.12, lease_duration=0.10, clock_drift_bound=0.01
        ).validate()  # 0.10 + 0.02 == 0.12: equality is not provable death
    with pytest.raises(ConfigurationError):
        HeartbeatConfig(
            timeout=0.12, lease_duration=0.11, clock_drift_bound=0.01
        ).validate()
    with pytest.raises(ConfigurationError):
        HeartbeatConfig(clock_drift_bound=-0.001).validate()


def test_waitout_charges_twice_the_drift_bound():
    config = HeartbeatConfig(
        timeout=0.2, lease_duration=0.1, clock_drift_bound=0.02
    ).validate()
    assert config.waitout() == pytest.approx(0.1 + 2 * 0.02)
    assert config.waitout() < config.timeout


def test_read_leases_config_requires_view_quorum():
    ProtocolConfig(view_quorum=True, read_leases=True).validate()
    with pytest.raises(ConfigurationError):
        ProtocolConfig(read_leases=True).validate()


# ----------------------------------------------------------------------
# Grantor-side gate (ServerProtocol.may_grant_lease)
# ----------------------------------------------------------------------


def make_server(n: int = 3, server_id: int = 0) -> ServerProtocol:
    ring = RingView.initial(n)
    config = ProtocolConfig(view_quorum=True, read_leases=True)
    return ServerProtocol(server_id, ring, config)


def test_may_grant_lease_to_healthy_view_member():
    server = make_server()
    assert server.may_grant_lease(1)
    assert server.may_grant_lease(2)
    assert not server.may_grant_lease(0), "never to itself"


def test_no_grants_without_read_leases_config():
    ring = RingView.initial(3)
    server = ServerProtocol(0, ring, ProtocolConfig(view_quorum=True))
    assert not server.may_grant_lease(1)


def test_suspicion_stops_grants():
    """Suspicion and a live grant must never coexist: suspecting any
    member pauses the grantor, so grants stop toward *everyone* until
    the view question is settled."""
    server = make_server()
    server.on_suspect(1)
    assert not server.may_grant_lease(1), "never grant to a suspect"
    assert not server.may_grant_lease(2), "paused: own view may be moving"


def test_no_grant_to_announced_rejoiner_before_catchup():
    """An announced rejoiner holds stale state until the revived merge
    catches it up; a lease would let it serve that state."""
    server = make_server()
    server.on_ring_message(RejoinRequest(2, 1, 0), 2)
    assert not server.may_grant_lease(2)
    assert server.may_grant_lease(1), "other members are unaffected"


def test_lease_update_transitions():
    server = make_server()
    server.on_lease_update(True, 0)
    assert server.lease_valid and server.lease_epoch == 0
    server.on_lease_update(False, 0)
    assert not server.lease_valid
    assert server.lease_epoch == -1, "an invalid lease covers no epoch"


def test_waitout_elapsed_ignores_stale_epochs():
    server = make_server()
    server._lease_waitout = True
    server._waitout_commit_tags = [Tag(1, 1)]
    server.lease_waitout_elapsed(server.installed_epoch + 1)
    assert server._lease_waitout, "a stale timer must not lift the gate"
    server.lease_waitout_elapsed(server.installed_epoch)
    assert not server._lease_waitout
    assert list(server.commit_queue) == [Tag(1, 1)], "stashed commits flushed"


# ----------------------------------------------------------------------
# clock_skew fault plan validation
# ----------------------------------------------------------------------


def test_clock_skew_plan_accepts_and_counts():
    plan = FaultPlan()
    plan.clock_skew("s0", offset=0.01, at=0.1)
    plan.clock_skew("s0", offset=-0.01, at=0.5)
    plan.clock_skew("s1", offset=-0.005, at=0.1)
    assert "clock_skew" in plan.fault_kinds()
    assert plan.events >= 3


def test_clock_skew_plan_rejects_bad_offsets():
    plan = FaultPlan()
    with pytest.raises(ConfigurationError):
        plan.clock_skew("s0", offset=float("nan"), at=0.1)
    with pytest.raises(ConfigurationError):
        plan.clock_skew("s0", offset=float("inf"), at=0.1)
    with pytest.raises(ConfigurationError):
        plan.clock_skew("s0", offset=True, at=0.1)


def test_clock_skew_plan_rejects_duplicate_same_time_skew():
    plan = FaultPlan()
    plan.clock_skew("s0", offset=0.01, at=0.1)
    with pytest.raises(ConfigurationError):
        plan.clock_skew("s0", offset=0.02, at=0.1)
