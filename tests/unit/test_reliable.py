"""Unit tests for the sans-I/O reliable session layer.

The satellite contract: loss, reorder, duplication and
retransmit-after-crash-of-peer are all handled by the session pair
alone, with no network underneath — segments are carried by hand, which
is exactly what sans-I/O buys.
"""

import pytest

from repro.core.messages import ClientRead, OpId
from repro.errors import ConfigurationError, ProtocolError
from repro.transport.codec import decode_message, encode_message
from repro.transport.reliable import (
    SEGMENT_HEADER_BYTES,
    ReliableConfig,
    ReliableSession,
    Segment,
    decode_segment,
    encode_segment,
)


def pair():
    return ReliableSession(), ReliableSession()


def test_in_order_delivery_and_piggybacked_ack():
    a, b = pair()
    s1 = a.send("m1", now=0.0)
    s2 = a.send("m2", now=0.0)
    assert (s1.seq, s2.seq) == (1, 2)
    assert b.on_segment(s1, now=0.1) == ["m1"]
    assert b.on_segment(s2, now=0.1) == ["m2"]
    assert b.ack_owed
    # The ack rides on b's next data segment and clears a's window.
    reverse = b.send("r1", now=0.2)
    assert reverse.ack == 2 and not b.ack_owed
    a.on_segment(reverse, now=0.3)
    assert a.in_flight == 0
    assert a.retransmit_deadline is None


def test_lost_segment_is_retransmitted_with_backoff():
    config = ReliableConfig(rto_initial=0.1, rto_max=0.4, rto_backoff=2.0)
    a = ReliableSession(config)
    b = ReliableSession(config)
    a.send("lost", now=0.0)  # the wire eats it
    assert a.poll(now=0.05) == []  # not due yet
    (retx,) = a.poll(now=0.11)
    assert retx.seq == 1 and retx.payload == "lost"
    assert a.stats.retransmits == 1
    # Backoff doubled: next deadline is rto_backoff * rto_initial later.
    assert a.retransmit_deadline == pytest.approx(0.11 + 0.2)
    assert b.on_segment(retx, now=0.2) == ["lost"]
    # The receiver's ack stops the retransmission for good.
    a.on_segment(b.make_ack(), now=0.3)
    assert a.in_flight == 0 and a.retransmit_deadline is None


def test_reordered_segments_are_buffered_and_released_in_order():
    a, b = pair()
    s1 = a.send("m1", now=0.0)
    s2 = a.send("m2", now=0.0)
    s3 = a.send("m3", now=0.0)
    assert b.on_segment(s3, now=0.1) == []  # gap: buffered
    assert b.on_segment(s2, now=0.1) == []
    assert b.stats.reorders_buffered == 2
    assert b.on_segment(s1, now=0.1) == ["m1", "m2", "m3"]


def test_duplicates_are_suppressed_and_reacked():
    a, b = pair()
    s1 = a.send("m1", now=0.0)
    assert b.on_segment(s1, now=0.1) == ["m1"]
    b.make_ack()
    assert b.on_segment(s1, now=0.2) == []  # retransmit storm copy
    assert b.stats.dups_suppressed == 1
    # The duplicate re-arms the ack so the sender converges.
    assert b.ack_owed
    assert b.make_ack().ack == 1
    # A buffered out-of-order duplicate counts too.
    s2 = a.send("m2", now=0.3)
    s3 = a.send("m3", now=0.3)
    assert b.on_segment(s3, now=0.4) == []
    assert b.on_segment(s3, now=0.4) == []
    assert b.stats.dups_suppressed == 2
    assert b.on_segment(s2, now=0.5) == ["m2", "m3"]


def test_retransmit_after_crash_of_peer_until_reset():
    """A crashed peer never acks: the sender keeps retransmitting at the
    capped backoff until the runtime learns of the crash and resets the
    session — after which nothing is in flight and nothing fires."""
    config = ReliableConfig(rto_initial=0.1, rto_max=0.2, rto_backoff=2.0)
    a = ReliableSession(config)
    a.send("into the void", now=0.0)
    fired = 0
    now = 0.0
    for _ in range(6):
        now = a.retransmit_deadline
        fired += len(a.poll(now))
    assert fired == 6
    assert a.stats.retransmits == 6
    # Backoff saturates at rto_max: deadlines advance by 0.2 forever.
    assert a.retransmit_deadline == pytest.approx(now + 0.2)
    a.reset()  # failure detector: the peer is dead, channel abandoned
    assert a.in_flight == 0
    assert a.retransmit_deadline is None
    assert a.poll(now=100.0) == []
    # The session is reusable for a fresh channel afterwards.
    assert a.send("again", now=100.0).seq == 1


def test_ack_advance_snaps_backoff_to_initial():
    config = ReliableConfig(rto_initial=0.1, rto_max=0.8, rto_backoff=2.0)
    a = ReliableSession(config)
    a.send("m1", now=0.0)
    a.poll(now=0.1)
    a.poll(now=0.3)  # rto now 0.4
    a.send("m2", now=0.35)
    a.on_segment(Segment(0, 1), now=0.4)  # ack m1 only
    # Window advanced: rto snaps back, m2 still covered.
    assert a.in_flight == 1
    assert a.retransmit_deadline == pytest.approx(0.5)


def test_stale_ack_does_not_rearm_the_timer():
    a = ReliableSession()
    a.send("m1", now=0.0)
    a.on_segment(Segment(0, 1), now=0.1)
    assert a.retransmit_deadline is None
    a.on_segment(Segment(0, 1), now=0.2)  # duplicate ack
    assert a.retransmit_deadline is None and a.in_flight == 0


def test_segment_wire_roundtrip():
    message = ClientRead(OpId(7, 3))
    data = Segment(5, 2, message)
    encoded = encode_segment(data, encode_message)
    assert len(encoded) == SEGMENT_HEADER_BYTES + len(encode_message(message))
    decoded = decode_segment(encoded, decode_message)
    assert decoded.seq == 5 and decoded.ack == 2 and decoded.payload == message

    ack = Segment(0, 9)
    encoded = encode_segment(ack, encode_message)
    assert len(encoded) == SEGMENT_HEADER_BYTES
    decoded = decode_segment(encoded, decode_message)
    assert decoded == ack and not decoded.is_data

    with pytest.raises(ProtocolError):
        decode_segment(b"\x00\x01", decode_message)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ReliableConfig(rto_initial=0.0).validate()
    with pytest.raises(ConfigurationError):
        ReliableConfig(rto_initial=0.2, rto_max=0.1).validate()
    with pytest.raises(ConfigurationError):
        ReliableConfig(rto_backoff=0.5).validate()
    with pytest.raises(ConfigurationError):
        ReliableConfig(ack_delay=-1.0).validate()
