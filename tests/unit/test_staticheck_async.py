"""Red/green/pragma fixtures for the asynchygiene.* rule family."""

from __future__ import annotations

from tests.staticheck_helpers import rules_of, run_tree


def test_blocking_sleep_in_coroutine_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "import time\n"
                "\n"
                "async def run():\n"
                "    time.sleep(0.1)\n"
            )
        },
    )
    assert rules_of(violations) == ["asynchygiene.blocking-call"]


def test_bare_open_in_coroutine_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "async def load(path):\n"
                "    with open(path) as fh:\n"
                "        return fh.read()\n"
            )
        },
    )
    assert rules_of(violations) == ["asynchygiene.blocking-call"]


def test_blocking_call_outside_coroutine_allowed(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "import time\n"
                "\n"
                "def warmup():\n"
                "    time.sleep(0.1)\n"
            )
        },
    )
    assert violations == []


def test_sync_helper_nested_in_coroutine_allowed(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "import time\n"
                "\n"
                "async def run(executor, loop):\n"
                "    def blocking():\n"
                "        time.sleep(0.1)\n"
                "    await loop.run_in_executor(executor, blocking)\n"
            )
        },
    )
    assert violations == []


def test_discarded_task_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "import asyncio\n"
                "\n"
                "async def go(work):\n"
                "    asyncio.create_task(work())\n"
            )
        },
    )
    assert rules_of(violations) == ["asynchygiene.orphaned-task"]


def test_discarded_loop_method_task_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "def go(loop, work):\n"
                "    loop.create_task(work())\n"
            )
        },
    )
    assert rules_of(violations) == ["asynchygiene.orphaned-task"]


def test_retained_task_allowed(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "import asyncio\n"
                "\n"
                "async def go(self, work):\n"
                "    task = asyncio.create_task(work())\n"
                "    self.tasks.add(task)\n"
                "    task.add_done_callback(self.tasks.discard)\n"
            )
        },
    )
    assert violations == []


def test_read_await_write_on_protocol_state_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "async def tick(self, io):\n"
                "    seen = self.proto.cursor\n"
                "    await io.flush()\n"
                "    self.proto.cursor = seen + 1\n"
            )
        },
    )
    assert rules_of(violations) == ["asynchygiene.await-yield"]
    assert "cursor" in violations[0].message


def test_reread_after_await_allowed(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "async def tick(self, io):\n"
                "    await io.flush()\n"
                "    seen = self.proto.cursor\n"
                "    self.proto.cursor = seen + 1\n"
            )
        },
    )
    assert violations == []


def test_pragma_suppresses_async_finding(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/aio.py": (
                "import time\n"
                "\n"
                "async def run():\n"
                "    # staticheck: allow(asynchygiene.blocking-call)"
                " -- startup path, loop not serving connections yet\n"
                "    time.sleep(0.1)\n"
            )
        },
    )
    assert violations == []
