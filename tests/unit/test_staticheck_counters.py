"""Red/green/pragma fixtures for the counters.* rule family."""

from __future__ import annotations

from tests.staticheck_helpers import rules_of, run_tree

_REGISTRY = (
    'FOO_EVENTS = "foo.events"\n'
    'BAR_TICKS = "bar.ticks"\n'
)


def test_registered_name_as_literal_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/counters.py": _REGISTRY,
            "repro/sim/emit.py": (
                "def fire(trace):\n"
                '    trace.count("foo.events")\n'
            ),
        },
    )
    assert "counters.literal" in rules_of(violations)


def test_unregistered_dotted_count_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/counters.py": _REGISTRY,
            "repro/sim/emit.py": (
                "def fire(trace):\n"
                '    trace.count("foo.eventz")\n'
            ),
        },
    )
    assert rules_of(violations) == ["counters.unregistered"]


def test_consumed_but_never_emitted_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/counters.py": _REGISTRY,
            "repro/chaos/gate.py": (
                "from repro.sim.counters import FOO_EVENTS\n"
                "\n"
                "def gate(counters):\n"
                "    return counters.get(FOO_EVENTS, 0) > 0\n"
            ),
        },
    )
    assert rules_of(violations) == ["counters.consumed-not-emitted"]
    assert "FOO_EVENTS" in violations[0].message


def test_emitted_and_consumed_constant_passes(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/counters.py": _REGISTRY,
            "repro/sim/emit.py": (
                "from repro.sim.counters import FOO_EVENTS\n"
                "\n"
                "def fire(trace):\n"
                "    trace.count(FOO_EVENTS)\n"
            ),
            "repro/chaos/gate.py": (
                "from repro.sim.counters import FOO_EVENTS\n"
                "\n"
                "def gate(counters):\n"
                "    return counters.get(FOO_EVENTS, 0) > 0\n"
            ),
        },
    )
    assert violations == []


def test_module_attribute_reference_counts_as_emission(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/counters.py": _REGISTRY,
            "repro/sim/emit.py": (
                "from repro.sim import counters\n"
                "\n"
                "def fire(trace):\n"
                "    trace.count(counters.BAR_TICKS)\n"
            ),
            "repro/bench/reader.py": (
                "from repro.sim.counters import BAR_TICKS\n"
                "\n"
                "def read(counters_map):\n"
                "    return counters_map.get(BAR_TICKS, 0)\n"
            ),
        },
    )
    assert violations == []


def test_registry_and_docstrings_are_exempt(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/counters.py": _REGISTRY,
            "repro/sim/emit.py": (
                "def fire():\n"
                '    "foo.events"\n'
                "    pass\n"
            ),
        },
    )
    assert violations == []


def test_tree_without_registry_is_skipped(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/emit.py": (
                "def fire(trace):\n"
                '    trace.count("foo.events")\n'
            )
        },
    )
    assert violations == []


def test_pragma_suppresses_counter_literal(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/counters.py": _REGISTRY,
            "repro/sim/emit.py": (
                "def fire(trace):\n"
                '    trace.count("foo.events")  # staticheck:'
                " allow(counters.literal) -- golden-file fixture must spell"
                " the wire name\n"
            ),
        },
    )
    assert violations == []
