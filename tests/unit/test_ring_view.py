"""Unit tests for ring membership views."""

import pytest

from repro.core.ring import RingView
from repro.errors import ConfigurationError


def test_initial_ring_members():
    ring = RingView.initial(4)
    assert ring.members == (0, 1, 2, 3)
    assert ring.alive() == [0, 1, 2, 3]
    assert ring.epoch == 0


def test_successor_wraps_around():
    ring = RingView.initial(3)
    assert ring.successor(0) == 1
    assert ring.successor(2) == 0


def test_predecessor_wraps_around():
    ring = RingView.initial(3)
    assert ring.predecessor(0) == 2
    assert ring.predecessor(1) == 0


def test_successor_skips_dead(ring5):
    ring = ring5.without(1).without(2)
    assert ring.successor(0) == 3
    assert ring.predecessor(3) == 0
    assert ring.epoch == 2


def test_single_survivor_is_own_successor(ring5):
    ring = ring5.with_dead([0, 1, 2, 3])
    assert ring.successor(4) == 4
    assert ring.predecessor(4) == 4
    assert ring.num_alive == 1


def test_adopter_is_closest_alive_predecessor(ring5):
    ring = ring5.without(2)
    assert ring.adopter(2) == 1
    ring = ring.without(1)
    assert ring.adopter(2) == 0
    assert ring.adopter(1) == 0


def test_adopter_requires_dead_server(ring5):
    with pytest.raises(ConfigurationError):
        ring5.adopter(2)


def test_cannot_kill_everyone(ring5):
    with pytest.raises(ConfigurationError):
        ring5.with_dead([0, 1, 2, 3, 4])


def test_without_unknown_server_raises(ring5):
    with pytest.raises(ConfigurationError):
        ring5.without(99)


def test_views_are_immutable(ring5):
    smaller = ring5.without(0)
    assert ring5.num_alive == 5
    assert smaller.num_alive == 4


def test_needs_at_least_one_server():
    with pytest.raises(ConfigurationError):
        RingView.initial(0)


def test_is_alive(ring5):
    ring = ring5.without(3)
    assert ring.is_alive(0)
    assert not ring.is_alive(3)
    assert not ring.is_alive(42)


def test_revived_restores_original_slot():
    from repro.core.ring import RingView

    ring = RingView.initial(4).without(1).without(2)
    revived = ring.revived(1)
    assert revived.is_alive(1)
    assert revived.dead == {2}
    # The rejoiner takes back its original slot in the member order.
    assert revived.successor(0) == 1
    assert revived.successor(1) == 3


def test_revived_is_noop_for_live_server_and_rejects_unknown():
    import pytest

    from repro.core.ring import RingView
    from repro.errors import ConfigurationError

    ring = RingView.initial(3).without(2)
    assert ring.revived(0) is ring
    with pytest.raises(ConfigurationError):
        ring.revived(9)


def test_revive_all_filters_to_the_dead():
    from repro.core.ring import RingView

    ring = RingView.initial(4).with_dead((1, 3))
    assert ring.revive_all(()) is ring
    assert ring.revive_all((0,)) is ring  # nothing dead in the set
    grown = ring.revive_all((1, 3, 0))
    assert grown.dead == frozenset()


def test_epoch_grows_monotonically_through_revivals():
    """Unlike the historic len(dead) rule, the epoch keeps growing when
    recovery re-grows the ring, so views never repeat an epoch."""
    ring = RingView.initial(4)
    assert ring.epoch == 0
    shrunk = ring.without(1)
    assert shrunk.epoch == 1
    grown = shrunk.revived(1)
    assert grown.dead == frozenset()
    assert grown.epoch == 2, "reviving bumps the epoch too"
    assert grown.with_dead((2, 3)).epoch == 3
    assert grown.with_dead(()).epoch == 2, "no change, no bump"
    assert shrunk.revive_all((1,)).epoch == 2


def test_at_epoch_replaces_dead_set_wholesale():
    ring = RingView.initial(4).without(1)
    adopted = ring.at_epoch(7, dead=(2,))
    assert adopted.epoch == 7
    assert adopted.dead == {2}
    assert adopted.is_alive(1), "adoption replaces, never unions"
    assert ring.at_epoch(ring.epoch) is ring


def test_quorum_is_majority_of_alive():
    ring = RingView.initial(5)
    assert ring.quorum == 3
    assert ring.without(0).quorum == 3
    assert ring.with_dead((0, 1)).quorum == 2
    assert RingView.initial(1).quorum == 1
