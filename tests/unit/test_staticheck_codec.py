"""Red/green/pragma fixtures for the codec.* rule family.

Each fixture is a miniature messages.py/codec.py/reliable.py trio laid
out at the real repro-relative paths, so the project rule cross-checks
them exactly as it does the committed tree.
"""

from __future__ import annotations

from tests.staticheck_helpers import rules_of, run_tree

_MESSAGES_OK = (
    "from dataclasses import dataclass\n"
    "from typing import Union\n"
    "\n"
    "TAG_WIRE_BYTES = 12\n"
    "OP_ID_WIRE_BYTES = 12\n"
    "BASE_WIRE_BYTES = 8\n"
    "\n"
    "@dataclass(frozen=True)\n"
    "class PreWrite:\n"
    "    epoch: int\n"
    "\n"
    "@dataclass(frozen=True)\n"
    "class Commit:\n"
    "    epoch: int\n"
    "\n"
    "RingMessage = Union[PreWrite, Commit]\n"
    "\n"
    "def payload_size(message):\n"
    "    if isinstance(message, (PreWrite, Commit)):\n"
    "        return 4\n"
    "    raise TypeError(message)\n"
)

_CODEC_OK = (
    "from repro.core.messages import Commit, PreWrite\n"
    "\n"
    "_TYPE_CODES = {PreWrite: 1, Commit: 2}\n"
    "_ENCODERS = {PreWrite: None, Commit: None}\n"
    "_DECODERS = {_TYPE_CODES[PreWrite]: None, _TYPE_CODES[Commit]: None}\n"
)

_RELIABLE_OK = (
    "import struct\n"
    "\n"
    "SEGMENT_HEADER_BYTES = 13\n"
    "_SEGMENT_HEADER = struct.Struct('>BIII')\n"
    "BATCH_ENTRY_BYTES = 4\n"
    "_BATCH_ENTRY = struct.Struct('>I')\n"
    "BATCH_SENTINEL = 0xFFFFFFFF\n"
    "\n"
    "class Channel:\n"
    "    def __init__(self):\n"
    "        self._next_seq = 1\n"
)


def _tree(messages=_MESSAGES_OK, codec=_CODEC_OK, reliable=_RELIABLE_OK):
    return {
        "repro/core/messages.py": messages,
        "repro/transport/codec.py": codec,
        "repro/transport/reliable.py": reliable,
    }


def test_conforming_trio_passes(tmp_path):
    assert run_tree(tmp_path, _tree()) == []


def test_ring_message_without_epoch_flagged(tmp_path):
    messages = _MESSAGES_OK.replace(
        "class Commit:\n    epoch: int\n", "class Commit:\n    seq: int\n"
    )
    violations = run_tree(tmp_path, _tree(messages=messages))
    assert rules_of(violations) == ["codec.epoch-stamp"]
    assert "Commit" in violations[0].message


def test_fragment_class_outside_ring_union_flagged(tmp_path):
    # A Fragment* message not in the RingMessage union would silently
    # bypass the epoch guard and every codec coverage check.
    messages = _MESSAGES_OK.replace(
        "RingMessage = Union[PreWrite, Commit]\n",
        "@dataclass(frozen=True)\n"
        "class FragmentStore:\n"
        "    epoch: int\n"
        "\n"
        "RingMessage = Union[PreWrite, Commit]\n",
    )
    violations = run_tree(tmp_path, _tree(messages=messages))
    assert "codec.fragment-union" in rules_of(violations)
    assert any("FragmentStore" in v.message for v in violations)


def test_missing_payload_size_arm_flagged(tmp_path):
    messages = _MESSAGES_OK.replace("(PreWrite, Commit)", "(PreWrite,)")
    violations = run_tree(tmp_path, _tree(messages=messages))
    assert rules_of(violations) == ["codec.payload-size"]
    assert "Commit" in violations[0].message


def test_missing_dispatch_entries_flagged(tmp_path):
    codec = (
        "from repro.core.messages import Commit, PreWrite\n"
        "\n"
        "_TYPE_CODES = {PreWrite: 1}\n"
        "_ENCODERS = {PreWrite: None}\n"
        "_DECODERS = {_TYPE_CODES[PreWrite]: None}\n"
    )
    violations = run_tree(tmp_path, _tree(codec=codec))
    assert rules_of(violations) == ["codec.dispatch"]
    # Commit misses all three tables.
    assert len(violations) == 3


def test_duplicate_type_code_flagged(tmp_path):
    codec = _CODEC_OK.replace("Commit: 2", "Commit: 1")
    violations = run_tree(tmp_path, _tree(codec=codec))
    assert rules_of(violations) == ["codec.dispatch"]
    assert "assigned to both" in violations[0].message


def test_width_constant_mismatch_flagged(tmp_path):
    messages = _MESSAGES_OK.replace("TAG_WIRE_BYTES = 12", "TAG_WIRE_BYTES = 16")
    violations = run_tree(tmp_path, _tree(messages=messages))
    assert rules_of(violations) == ["codec.byte-accounting"]
    assert "TAG_WIRE_BYTES" in violations[0].message


def test_segment_header_mismatch_flagged(tmp_path):
    reliable = _RELIABLE_OK.replace(
        "SEGMENT_HEADER_BYTES = 13", "SEGMENT_HEADER_BYTES = 12"
    )
    violations = run_tree(tmp_path, _tree(reliable=reliable))
    assert rules_of(violations) == ["codec.byte-accounting"]


def test_non_maximal_sentinel_flagged(tmp_path):
    reliable = _RELIABLE_OK.replace(
        "BATCH_SENTINEL = 0xFFFFFFFF", "BATCH_SENTINEL = 0x7FFFFFFF"
    )
    violations = run_tree(tmp_path, _tree(reliable=reliable))
    assert rules_of(violations) == ["codec.batch-sentinel"]


def test_seq_initialised_at_sentinel_flagged(tmp_path):
    reliable = _RELIABLE_OK.replace(
        "self._next_seq = 1", "self._next_seq = 0xFFFFFFFF"
    )
    violations = run_tree(tmp_path, _tree(reliable=reliable))
    assert rules_of(violations) == ["codec.batch-sentinel"]
    assert "_next_seq" in violations[0].message


def test_fixture_tree_without_catalogue_is_skipped(tmp_path):
    # A tree with no core/messages.py (every per-rule fixture in this
    # suite) must not trip the codec rule.
    violations = run_tree(tmp_path, {"repro/sim/other.py": "x = 1\n"})
    assert violations == []


def test_pragma_suppresses_codec_finding(tmp_path):
    messages = _MESSAGES_OK.replace(
        "class Commit:\n    epoch: int\n",
        "# staticheck: allow(codec.epoch-stamp) -- local-only control frame,"
        " never crosses a view change\n"
        "class Commit:\n    seq: int\n",
    )
    violations = run_tree(tmp_path, _tree(messages=messages))
    assert violations == []
