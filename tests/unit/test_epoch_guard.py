"""Unit tests for epoch-guarded, quorum-installed ring views.

Drives :class:`ServerProtocol` in ``view_quorum`` mode (the imperfect
failure detector's operating mode) by hand: suspicion events via
``on_suspect``/``on_unsuspect``, proposals via ``propose_reconfig`` (in
the runtimes a grace timer calls it), and message delivery between
chosen servers — which makes partitions trivial to model: just don't
deliver across the cut.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.messages import (
    ClientRead,
    ClientWrite,
    OpId,
    PreWrite,
    ReconfigToken,
    StaleEpochNotice,
)
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.core.tags import Tag


def make_servers(n: int) -> list[ServerProtocol]:
    ring = RingView.initial(n)
    config = ProtocolConfig(view_quorum=True)
    return [ServerProtocol(i, ring, config) for i in range(n)]


def pump(servers, alive=None, rounds=100):
    """Deliver ring + directed traffic among ``alive`` until quiet."""
    living = set(alive) if alive is not None else {s.server_id for s in servers}
    for _ in range(rounds):
        moved = False
        for server in servers:
            if server.server_id not in living:
                continue
            directed = server.next_directed_message()
            if directed is not None:
                dst, message = directed
                if dst in living:
                    servers[dst].on_ring_message(message, server.server_id)
                moved = True
                continue
            message = server.next_ring_message()
            if message is not None:
                dst = server.successor
                if dst in living:
                    servers[dst].on_ring_message(message, server.server_id)
                moved = True
        if not moved:
            return
    raise AssertionError("did not quiesce")


def exclude(servers, victim: int, alive):
    """Suspect ``victim`` everywhere alive and run one proposal round."""
    for sid in alive:
        servers[sid].on_suspect(victim)
    for sid in alive:
        servers[sid].propose_reconfig()
    pump(servers, alive=alive)


def test_suspicion_pauses_and_defers_reads():
    servers = make_servers(4)
    s0 = servers[0]
    s0.on_suspect(2)
    assert s0.paused
    replies = s0.on_client_message(7, ClientRead(OpId(7, 0)))
    assert replies == [], "reads deferred while a view member is suspect"
    assert len(s0.deferred_reads) == 1


def test_quorum_refusal_stalls_instead_of_installing():
    servers = make_servers(4)
    s0 = servers[0]
    s0.on_suspect(1)
    s0.on_suspect(2)
    s0.propose_reconfig()
    assert s0.stats_quorum_stalls == 1
    assert s0.paused and not s0.control_queue and not s0.outbox
    assert s0.installed_epoch == 0, "a minority never moves the epoch"


def test_exclusion_installs_with_quorum_and_resumes():
    servers = make_servers(4)
    alive = [0, 1, 2]
    exclude(servers, 3, alive)
    for sid in alive:
        proto = servers[sid]
        assert proto.installed_epoch == 1
        assert proto.ring.dead == {3}
        assert not proto.paused
    # All survivors agree on which install heads epoch 1.
    installs = {servers[sid].view_log[-1] for sid in alive}
    assert len(installs) == 1


def test_concurrent_proposals_arbitrate_to_lowest_coordinator():
    servers = make_servers(4)
    alive = [0, 1, 2]
    for sid in alive:
        servers[sid].on_suspect(3)
    # Everyone proposes concurrently; the promise machinery must let
    # exactly one install through (ties break toward the lowest id).
    for sid in reversed(alive):
        servers[sid].propose_reconfig()
    pump(servers, alive=alive)
    for sid in alive:
        proto = servers[sid]
        assert proto.installed_epoch == 1
        assert proto.view_log == [(1, 0, proto.view_log[0][2])]
        assert not proto.paused


def test_stale_epoch_data_is_rejected_and_notice_queued():
    servers = make_servers(4)
    exclude(servers, 3, [0, 1, 2])
    s0 = servers[0]
    # Install-time fencing already told the excluded server once...
    assert s0._stale_notified.get(3) == 1
    # ...so exercise the data-path guard with a straggler from a peer
    # that was never fenced: an epoch-0 frame after epoch 1 installed.
    stale = PreWrite(Tag(9, 2), b"zombie", OpId(9, 0), (), epoch=0)
    s0.on_ring_message(stale, sender=2)
    assert s0.stats_stale_epoch_dropped == 1
    assert s0.tag != Tag(9, 2), "stale write never installs"
    assert list(s0.outbox) == [(2, StaleEpochNotice(1, 0))]
    # The notice is deduplicated per installed epoch.
    s0.on_ring_message(stale, sender=2)
    assert len(s0.outbox) == 1


def test_stale_notice_demotes_to_rejoining_and_sponsor_folds_back():
    servers = make_servers(4)
    alive = [0, 1, 2]
    # Commit a write the excluded server never saw.
    exclude(servers, 3, alive)
    op = OpId(40, 0)
    servers[0].on_client_message(40, ClientWrite(op, b"post-exclusion"))
    pump(servers, alive=alive)
    assert servers[0].value == b"post-exclusion"
    s3 = servers[3]
    assert s3.value != b"post-exclusion"

    s3.on_ring_message(StaleEpochNotice(1, 0), sender=0)
    assert s3.rejoining and s3.paused
    # The excluded server's heartbeats keep flowing: the survivors
    # withdraw their suspicion, which already queues a re-admission...
    for sid in alive:
        servers[sid].on_unsuspect(3)
    # ...and its announcement reaches a sponsor, whose next proposal
    # carries the stale server as revived so the merge catches it up.
    sponsor = servers[1]
    announce = s3.next_rejoin_announce()
    assert announce is None, "runtime targets the announcement"
    s3.queue_rejoin_announce(1)
    dst, request = s3.next_directed_message()
    assert dst == 1 and request.epoch == 0
    sponsor.on_ring_message(request, sender=3)
    assert sponsor.stats_rejoins_sponsored == 1
    assert sponsor.reconcile_due, "sponsorship rides the proposal pipeline"
    sponsor.propose_reconfig()
    pump(servers)
    assert not s3.rejoining and not s3.paused
    assert s3.installed_epoch == servers[0].installed_epoch == 2
    assert s3.value == b"post-exclusion", "caught up by the revived merge"
    read = s3.on_client_message(41, ClientRead(OpId(41, 0)))
    assert read and read[0].message.value == b"post-exclusion"


def test_future_epoch_token_demotes_stale_receiver():
    servers = make_servers(4)
    s3 = servers[3]
    token = ReconfigToken(
        nonce=5,
        epoch=3,
        coordinator=0,
        dead=(),
        tag=Tag.ZERO,
        value=b"",
        pending=(),
        completed_ops=(),
    )
    s3.on_ring_message(token, sender=0)
    assert s3.rejoining, "a proposal from beyond installed+1 proves staleness"
    assert s3.stats_epoch_rejected_reconfigs == 1


def test_partitioned_minority_confirms_view_after_heal():
    """2-2 split: neither side has quorum, both stall; after the heal a
    membership-preserving confirm reconfiguration moves the epoch and
    resumes everyone — proof the old view is still live."""
    servers = make_servers(4)
    for sid, other in ((0, 2), (0, 3), (1, 2), (1, 3)):
        servers[sid].on_suspect(other)
        servers[other].on_suspect(sid)
    for server in servers:
        server.propose_reconfig()
        assert server.paused
        assert server.stats_quorum_stalls == 1
    # Heal: every suspicion withdrawn; confirm proposals run.
    for sid, other in ((0, 2), (0, 3), (1, 2), (1, 3)):
        servers[sid].on_unsuspect(other)
        servers[other].on_unsuspect(sid)
    for server in servers:
        server.propose_reconfig()
    pump(servers)
    for server in servers:
        assert not server.paused
        assert server.installed_epoch == 1
        assert server.ring.dead == frozenset()
        assert server.stats_confirm_reconfigs >= 1 or server.view_log


def test_suspected_coordinator_token_is_refused():
    servers = make_servers(4)
    s1 = servers[1]
    s1.on_suspect(0)
    token = ReconfigToken(
        nonce=1,
        epoch=1,
        coordinator=0,
        dead=(3,),
        tag=Tag.ZERO,
        value=b"",
        pending=(),
        completed_ops=(),
    )
    s1.on_ring_message(token, sender=0)
    assert s1.stats_epoch_rejected_reconfigs == 1
    assert s1.installed_epoch == 0 and not s1.control_queue
