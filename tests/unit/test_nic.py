"""Unit tests for the NIC port model (one message at a time)."""

from repro.sim.env import SimEnv
from repro.sim.nic import Nic, Port


def test_port_serialises_messages():
    env = SimEnv()
    port = Port(env, "tx", bandwidth_bps=8_000)  # 1000 bytes/s
    done = []
    port.submit(500, lambda: done.append(env.now))
    port.submit(500, lambda: done.append(env.now))
    env.run_until_idle()
    assert done == [0.5, 1.0]
    assert port.bytes_total == 1000
    assert port.messages_total == 2


def test_port_idle_callback_fires_on_drain():
    env = SimEnv()
    port = Port(env, "tx", bandwidth_bps=8_000)
    idles = []
    port.on_idle(lambda: idles.append(env.now))
    port.submit(100, lambda: None)
    port.submit(100, lambda: None)
    env.run_until_idle()
    assert idles == [0.2]  # only when the queue fully drains


def test_idle_callback_may_submit_more_work():
    env = SimEnv()
    port = Port(env, "tx", bandwidth_bps=8_000)
    sent = []

    def refill():
        if len(sent) < 3:
            port.submit(100, lambda: sent.append(env.now))

    port.on_idle(refill)
    port.submit(100, lambda: sent.append(env.now))
    env.run_until_idle()
    assert len(sent) == 3  # initial + refills until the guard stops at 3


def test_purge_drops_queued_but_not_inflight():
    env = SimEnv()
    port = Port(env, "tx", bandwidth_bps=8_000)
    done = []
    port.submit(100, lambda: done.append("first"))
    port.submit(100, lambda: done.append("second"))
    port.purge()  # second is queued; first is mid-transmission
    env.run_until_idle()
    assert done == ["first"]


def test_busy_time_and_utilization():
    env = SimEnv()
    port = Port(env, "tx", bandwidth_bps=8_000)
    port.submit(500, lambda: None)
    env.run_until_idle()
    env.scheduler.run(until=1.0)
    assert abs(port.busy_time - 0.5) < 1e-9
    assert abs(port.utilization(1.0) - 0.5) < 1e-9


def test_nic_has_independent_tx_rx():
    env = SimEnv()
    nic = Nic(env, "n0", bandwidth_bps=8_000)
    done = []
    nic.tx.submit(500, lambda: done.append(("tx", env.now)))
    nic.rx.submit(500, lambda: done.append(("rx", env.now)))
    env.run_until_idle()
    # Full duplex: both complete at 0.5s, neither delayed the other.
    assert done == [("tx", 0.5), ("rx", 0.5)]
