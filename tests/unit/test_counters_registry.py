"""The trace-counter registry: constants, scoped helpers, alias shim."""

from __future__ import annotations

import pytest

from repro.sim import counters
from repro.sim.counters import (
    NET_KINDS,
    NET_UNICASTS,
    NET_WIRE_BYTES,
    REGISTERED_COUNTERS,
    canonical,
    net_suffix,
    scoped,
)


def test_registered_counters_cover_every_fixed_constant():
    fixed = {
        value
        for name, value in vars(counters).items()
        if name.isupper() and isinstance(value, str) and "." in value
    }
    assert fixed == set(REGISTERED_COUNTERS)


def test_registered_names_are_dotted_and_unique():
    assert len(REGISTERED_COUNTERS) == 56
    for name in REGISTERED_COUNTERS:
        family, _, leaf = name.partition(".")
        assert family and leaf, name


def test_scoped_builds_per_network_names():
    assert scoped("lan0", NET_WIRE_BYTES) == "lan0.wire_bytes"
    assert scoped("ring", NET_UNICASTS) == "ring.unicasts"


def test_net_suffix_matches_scoped_names():
    for kind in NET_KINDS:
        assert scoped("net", kind).endswith(net_suffix(kind))


def test_unknown_scoped_kind_rejected():
    with pytest.raises(ValueError):
        scoped("lan0", "wire_byte")
    with pytest.raises(ValueError):
        net_suffix("unicast")


def test_canonical_is_identity_until_a_rename_ships():
    for name in REGISTERED_COUNTERS:
        assert canonical(name) == name
    # Unknown names pass through untouched (external scripts may read
    # counters this registry never owned).
    assert canonical("custom.counter") == "custom.counter"
