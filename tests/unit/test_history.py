"""Unit tests for operation history recording."""

import pytest

from repro.analysis.history import History, Operation
from repro.errors import HistoryError


def test_invoke_respond_records_interval():
    h = History()
    h.invoke(1.0, client=1, op="op1", kind="read", value=None)
    h.respond(2.0, client=1, op="op1", value=b"x", tag="t")
    (op,) = h.operations
    assert op.kind == "read" and op.value == b"x"
    assert op.start == 1.0 and op.end == 2.0 and op.tag == "t"


def test_write_records_invocation_value():
    h = History()
    h.invoke(1.0, 1, "w", "write", b"written")
    h.respond(2.0, 1, "w", value=None)
    assert h.operations[0].value == b"written"


def test_duplicate_invocation_rejected():
    h = History()
    h.invoke(1.0, 1, "op", "read", None)
    with pytest.raises(HistoryError):
        h.invoke(1.5, 1, "op", "read", None)


def test_response_without_invocation_rejected():
    h = History()
    with pytest.raises(HistoryError):
        h.respond(1.0, 1, "ghost", b"")


def test_close_converts_open_invocations():
    h = History()
    h.invoke(1.0, 1, "w", "write", b"v")
    h.close()
    (op,) = h.operations
    assert not op.complete and op.end is None


def test_filters():
    ops = [
        Operation(1, "write", b"a", 0, 1),
        Operation(2, "read", b"a", 1, 2),
        Operation(3, "write", b"b", 2, None),
    ]
    h = History.of(ops)
    assert len(h.reads()) == 1
    assert len(h.writes()) == 2
    assert len(h.completed()) == 2
    assert len(h) == 3


def test_overlaps():
    a = Operation(1, "read", b"", 0.0, 2.0)
    b = Operation(2, "read", b"", 1.0, 3.0)
    c = Operation(3, "read", b"", 2.5, 3.0)
    open_op = Operation(4, "write", b"", 0.5, None)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c) and not c.overlaps(a)
    assert open_op.overlaps(c), "open operations overlap everything after them"


def test_invoke_records_block_key_through_respond_and_close():
    h = History()
    h.invoke(0.0, 1, "w0", "write", b"x", block=3)
    h.respond(1.0, 1, "w0", None, tag="t")
    h.invoke(2.0, 2, "r0", "read", None, block=5)
    h.close()  # r0 stays open but keeps its block
    by_client = {op.client: op for op in h.operations}
    assert by_client[1].block == 3 and by_client[1].complete
    assert by_client[2].block == 5 and not by_client[2].complete


def test_split_by_block_puts_every_op_in_exactly_one_bucket():
    ops = [
        Operation(1, "write", b"a", 0, 1, tag="t1", block=0),
        Operation(2, "read", b"a", 2, 3, tag="t1", block=0),
        Operation(3, "write", b"b", 0, 1, tag="t2", block=1),
        Operation(4, "read", b"c", 0, 1, tag="t3"),  # no block key
    ]
    h = History.of(ops)
    buckets = h.split_by_block()
    assert set(buckets) == {0, 1, None}
    assert sum(len(bucket) for bucket in buckets.values()) == len(ops)
    assert [op.client for op in buckets[0].operations] == [1, 2]
    assert [op.client for op in buckets[1].operations] == [3]
    assert [op.client for op in buckets[None].operations] == [4]
    for block, bucket in buckets.items():
        assert all(op.block == block for op in bucket.operations)


def test_split_by_block_checks_are_independent():
    """A violation confined to one block fails only that block's check."""
    from repro.analysis.linearizability import check_tagged_history

    good = [
        Operation(1, "write", b"a", 0, 1, tag=1, block=0),
        Operation(2, "read", b"a", 2, 3, tag=1, block=0),
    ]
    inverted = [
        Operation(3, "read", b"y", 0, 1, tag=2, block=1),
        Operation(4, "read", b"x", 2, 3, tag=1, block=1),
    ]
    buckets = History.of(good + inverted).split_by_block()
    ok0, reason0 = check_tagged_history(buckets[0], require_full_coverage=True)
    ok1, _ = check_tagged_history(buckets[1], require_full_coverage=True)
    assert ok0, reason0
    assert not ok1
