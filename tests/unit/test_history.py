"""Unit tests for operation history recording."""

import pytest

from repro.analysis.history import History, Operation
from repro.errors import HistoryError


def test_invoke_respond_records_interval():
    h = History()
    h.invoke(1.0, client=1, op="op1", kind="read", value=None)
    h.respond(2.0, client=1, op="op1", value=b"x", tag="t")
    (op,) = h.operations
    assert op.kind == "read" and op.value == b"x"
    assert op.start == 1.0 and op.end == 2.0 and op.tag == "t"


def test_write_records_invocation_value():
    h = History()
    h.invoke(1.0, 1, "w", "write", b"written")
    h.respond(2.0, 1, "w", value=None)
    assert h.operations[0].value == b"written"


def test_duplicate_invocation_rejected():
    h = History()
    h.invoke(1.0, 1, "op", "read", None)
    with pytest.raises(HistoryError):
        h.invoke(1.5, 1, "op", "read", None)


def test_response_without_invocation_rejected():
    h = History()
    with pytest.raises(HistoryError):
        h.respond(1.0, 1, "ghost", b"")


def test_close_converts_open_invocations():
    h = History()
    h.invoke(1.0, 1, "w", "write", b"v")
    h.close()
    (op,) = h.operations
    assert not op.complete and op.end is None


def test_filters():
    ops = [
        Operation(1, "write", b"a", 0, 1),
        Operation(2, "read", b"a", 1, 2),
        Operation(3, "write", b"b", 2, None),
    ]
    h = History.of(ops)
    assert len(h.reads()) == 1
    assert len(h.writes()) == 2
    assert len(h.completed()) == 2
    assert len(h) == 3


def test_overlaps():
    a = Operation(1, "read", b"", 0.0, 2.0)
    b = Operation(2, "read", b"", 1.0, 3.0)
    c = Operation(3, "read", b"", 2.5, 3.0)
    open_op = Operation(4, "write", b"", 0.5, None)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c) and not c.overlaps(a)
    assert open_op.overlaps(c), "open operations overlap everything after them"
