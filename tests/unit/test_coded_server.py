"""Integration tests for the erasure-coded value backend.

Drives coded-mode :class:`ServerProtocol` rings by hand (view_quorum
suspicion and proposals included), asserting the protocol-level
contract: the circulating pre-write carries no value, every member ends
up with exactly its fragment, reads reconstruct the full value, and the
reconfiguration merge repairs missing fragments (the RADON-style path).
"""

from __future__ import annotations

import pytest

from repro.core import coding
from repro.core.config import ProtocolConfig
from repro.core.durable import MemorySnapshotStore
from repro.core.messages import (
    ClientRead,
    ClientWrite,
    FragmentStore,
    OpId,
    PreWrite,
    ReadAck,
    WriteAck,
)
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.core.tags import Tag
from repro.errors import ProtocolError

K, N = 2, 4


def coded_config(**overrides) -> ProtocolConfig:
    return ProtocolConfig(
        view_quorum=True, value_coding="coded", coding_k=K, coding_n=N,
        **overrides,
    )


class CodedRing:
    """Lossless hand-driven ring with directed (outbox) delivery."""

    def __init__(self, n: int = N, initial_value: bytes = b"",
                 config: ProtocolConfig | None = None, durable: bool = False):
        ring = RingView.initial(n)
        cfg = config or coded_config()
        self.stores = [MemorySnapshotStore() if durable else None
                       for _ in range(n)]
        self.servers = [
            ServerProtocol(i, ring, cfg, initial_value=initial_value,
                           durable=self.stores[i])
            for i in range(n)
        ]
        self.replies: list = []
        self.sent: list = []  # (src, dst, message) log of every hop
        self._next_op = 0

    def write(self, server_id: int, value: bytes, client: int = 900) -> OpId:
        op = OpId(client, self._next_op)
        self._next_op += 1
        self.replies.extend(
            self.servers[server_id].on_client_message(client, ClientWrite(op, value))
        )
        return op

    def read(self, server_id: int, client: int = 901) -> OpId:
        op = OpId(client, self._next_op)
        self._next_op += 1
        self.replies.extend(
            self.servers[server_id].on_client_message(client, ClientRead(op))
        )
        return op

    def pump(self, alive=None, rounds: int = 400,
             require_quiet: bool = True) -> None:
        living = (set(alive) if alive is not None
                  else {s.server_id for s in self.servers})
        for _ in range(rounds):
            moved = False
            for server in self.servers:
                if server.server_id not in living:
                    continue
                directed = server.next_directed_message()
                if directed is not None:
                    dst, message = directed
                    self.sent.append((server.server_id, dst, message))
                    if dst in living:
                        self.replies.extend(
                            self.servers[dst].on_ring_message(
                                message, server.server_id
                            )
                        )
                    moved = True
                    continue
                message = server.next_ring_message()
                if message is not None:
                    dst = server.successor
                    self.sent.append((server.server_id, dst, message))
                    if dst in living:
                        self.replies.extend(
                            self.servers[dst].on_ring_message(
                                message, server.server_id
                            )
                        )
                    moved = True
            if not moved:
                return
        if require_quiet:
            raise AssertionError("ring did not quiesce")

    def acks_for(self, op: OpId) -> list:
        return [r.message for r in self.replies
                if getattr(r.message, "op", None) == op]


def test_coded_requires_matching_ring_size():
    with pytest.raises(ProtocolError, match="coding_n"):
        ServerProtocol(0, RingView.initial(3), coded_config())


def test_write_stripes_and_circulates_empty_prewrite():
    ring = CodedRing()
    value = bytes(range(256)) * 8
    op = ring.write(0, value)
    ring.pump()

    acks = ring.acks_for(op)
    assert acks and isinstance(acks[0], WriteAck) and acks[0].tag is not None
    committed = acks[0].tag

    prewrites = [m for _s, _d, m in ring.sent if isinstance(m, PreWrite)]
    assert prewrites and all(m.value == b"" for m in prewrites), (
        "the circulating pre-write must not carry the value"
    )
    stores = [m for _s, _d, m in ring.sent if isinstance(m, FragmentStore)]
    assert len(stores) == N - 1, "origin sends every peer exactly its share"

    # Every server committed the tag and holds exactly its own fragment.
    expected = coding.encode(value, K, N)
    for server in ring.servers:
        assert server.tag == committed
        assert server.frag_tag is None
        assert server.value == expected[server.server_id]
        assert not server.pending


def test_read_at_origin_hits_cache_and_elsewhere_reconstructs():
    ring = CodedRing()
    value = b"\xab\xcd" * 5000
    ring.write(2, value)
    ring.pump()

    # Origin kept the full value: no fetch round needed.
    op = ring.read(2)
    acks = ring.acks_for(op)
    assert acks and acks[0].value == value
    assert ring.servers[2].stats_coding_cache_reads == 1
    assert ring.servers[2].stats_coding_reconstructions == 0

    # A non-origin server must gather k fragments from the ring.
    op = ring.read(1)
    assert not ring.acks_for(op), "reply deferred until reconstruction"
    ring.pump()
    acks = ring.acks_for(op)
    assert acks and isinstance(acks[0], ReadAck) and acks[0].value == value
    assert ring.servers[1].stats_coding_reconstructions == 1

    # The decoded value is cached: the next read is local again.
    op = ring.read(1)
    assert ring.acks_for(op)[0].value == value
    assert ring.servers[1].stats_coding_cache_reads == 1


def test_initial_value_readable_without_any_write():
    initial = b"genesis" * 100
    ring = CodedRing(initial_value=initial)
    op = ring.read(3)
    acks = ring.acks_for(op)
    assert acks and acks[0].value == initial and acks[0].tag == Tag.ZERO


def test_exclusion_merge_unions_fragments_and_write_survives():
    """A member crash mid-write: the merged token unions the survivors'
    fragment shares, the re-commit completes the write, and every
    survivor ends with its own (possibly repaired) fragment."""
    ring = CodedRing()
    value = b"survives-the-view-change" * 64
    op = ring.write(0, value)
    # Let the fragments scatter and the pre-write travel partway, with
    # server 3 (the last hop) already gone: the circle cannot close in
    # epoch 0, so completion must come from the post-merge re-commit.
    alive = [0, 1, 2]
    ring.pump(alive=alive, rounds=6, require_quiet=False)
    for sid in alive:
        ring.servers[sid].on_suspect(3)
    for sid in alive:
        ring.replies.extend(ring.servers[sid].propose_reconfig())
    ring.pump(alive=alive)

    acks = ring.acks_for(op)
    assert acks and isinstance(acks[0], WriteAck) and acks[0].tag is not None
    expected = coding.encode(value, K, N)
    for sid in alive:
        server = ring.servers[sid]
        assert server.installed_epoch == 1
        assert server.tag == acks[0].tag
        assert not server.pending
        assert server.value == expected[sid] and server.frag_tag is None

    # And the value reads back on the shrunken ring.
    rop = ring.read(1)
    ring.pump(alive=alive)
    racks = ring.acks_for(rop)
    assert racks and racks[0].value == value


def test_rejoin_merge_repairs_fragment_from_k_peers():
    """RADON-style repair: a server that missed a write entirely (down
    while it committed) re-derives its fragment from the k shares the
    fold-in merge collected."""
    ring = CodedRing()
    alive = [0, 1, 2]
    for sid in alive:
        ring.servers[sid].on_suspect(3)
    for sid in alive:
        ring.replies.extend(ring.servers[sid].propose_reconfig())
    ring.pump(alive=alive)
    assert all(ring.servers[s].installed_epoch == 1 for s in alive)

    value = b"written-while-3-was-down" * 99
    op = ring.write(1, value)
    ring.pump(alive=alive)
    assert ring.acks_for(op)

    # Server 3 heals: unsuspect, announce, fold back in via a revived
    # reconfiguration.
    for sid in alive:
        ring.servers[sid].on_unsuspect(3)
    ring.servers[3]._enter_rejoining()
    ring.servers[3].queue_rejoin_announce(0)
    ring.pump()
    for sid in alive:
        ring.replies.extend(ring.servers[sid].propose_reconfig())
    ring.pump()

    s3 = ring.servers[3]
    assert not s3.rejoining and not s3.paused
    committed = ring.servers[1].tag
    assert s3.tag == committed
    expected = coding.encode(value, K, N)
    assert s3.value == expected[3] and s3.frag_tag is None, (
        "the fold-in merge must re-derive the rejoiner's fragment"
    )
    assert s3.stats_coding_repairs >= 1

    # The repaired server serves reads of the value it never saw.
    rop = ring.read(3)
    ring.pump()
    racks = ring.acks_for(rop)
    assert racks and racks[0].value == value


def test_crash_restart_restores_fragment_and_serves():
    """Durable round trip: the snapshot persists the fragment (and its
    lag marker) and a restored server reconstructs reads normally."""
    ring = CodedRing(durable=True)
    value = b"persisted" * 1234
    ring.write(0, value)
    ring.pump()

    snapshot = ring.stores[2].load()
    assert snapshot is not None
    expected = coding.encode(value, K, N)
    assert snapshot.value == expected[2]
    assert snapshot.frag_tag is None

    restored = ServerProtocol.restore(
        2, tuple(range(N)), snapshot, coded_config(),
        durable=ring.stores[2], generation=2,
    )
    assert restored.value == expected[2]
    assert restored.rejoining and restored.paused
    # Swap the restarted incarnation in and fold it back into the ring.
    ring.servers[2] = restored
    restored.queue_rejoin_announce(0)
    ring.pump()
    for sid in (0, 1, 3):
        ring.replies.extend(ring.servers[sid].propose_reconfig())
    ring.pump()
    assert not restored.rejoining
    rop = ring.read(2)
    ring.pump()
    racks = ring.acks_for(rop)
    assert racks and racks[0].value == value


def test_initiation_notes_minted_tag_for_uniqueness():
    """Regression (chaos coded #16): the origin must note its own minted
    tag in ``ts_seen`` at initiation.  A duplicate initiation that is
    later zombie-dropped (its op committed under a lower tag elsewhere)
    otherwise leaves no local trace, and ``_next_ts`` could mint the
    same tag for a *different* op — and peers' fragment stashes are
    keyed by tag, so one committed tag would cover two ops' fragment
    sets, decoding to the wrong value."""
    ring = CodedRing()
    op = ring.write(3, b"minted" * 16)
    s3 = ring.servers[3]
    assert s3.next_ring_message() is not None  # initiates; never delivered
    minted = s3.op_index[op]
    assert s3.ts_seen >= minted.ts, "minted tag must be noted immediately"
    # Even with the pending entry gone (the zombie-drop path), the
    # timestamp must never be reissued.
    s3.pending.pop(minted)
    assert s3._next_ts() > minted.ts


def test_unrecoverable_pending_dropped_uniformly_at_merge():
    """Regression (chaos coded #7): a merged pending entry whose
    fragment union holds fewer than k shares must be dropped by *every*
    member, origin included.  The origin keeping it (it holds its own
    share) would re-commit and ack a write its peers dropped — their
    reads never wait for it and its value is unrecoverable ring-wide."""
    ring = CodedRing()
    base = b"base" * 32
    ring.write(0, base)
    ring.pump()
    base_tag = ring.servers[0].tag

    # Initiate a write whose fragments and pre-write all die on the
    # wire: only the origin's own share ever exists.
    wop = ring.write(0, b"lost" * 32)
    ring.pump(alive=[0], rounds=8, require_quiet=False)
    assert ring.servers[0].pending, "write must be pending at the origin"

    # A view change excludes server 3; the merge sees one share (< k).
    alive = [0, 1, 2]
    for sid in alive:
        ring.servers[sid].on_suspect(3)
    for sid in alive:
        ring.replies.extend(ring.servers[sid].propose_reconfig())
    ring.pump(alive=alive)

    # Dropped everywhere: no ack, no pending, registers stay at base.
    assert not ring.acks_for(wop), "an unrecoverable write must not ack"
    for sid in alive:
        server = ring.servers[sid]
        assert not server.pending
        assert server.tag == base_tag
    assert all(ring.servers[s].stats_coding_pending_dropped == 1
               for s in alive)

    # Reads serve the base value instead of stalling on the lost write.
    rop = ring.read(1)
    ring.pump(alive=alive)
    racks = ring.acks_for(rop)
    assert racks and racks[0].value == base

    # The client's retry re-initiates under a fresh tag and completes.
    retry = ClientWrite(wop, b"lost" * 32)
    ring.replies.extend(ring.servers[0].on_client_message(900, retry))
    ring.pump(alive=alive)
    acks = ring.acks_for(wop)
    assert acks and isinstance(acks[-1], WriteAck)
    assert acks[-1].tag is not None and acks[-1].tag > base_tag


def test_reads_linearize_with_pending_write():
    """A read that arrives while a write circulates waits for the
    commit and returns the new value, reconstructed."""
    ring = CodedRing()
    old = b"old" * 100
    ring.write(0, old)
    ring.pump()
    new = b"new" * 100
    wop = ring.write(0, new)
    # Deliver a couple of hops so server 2 has the pre-write pending.
    ring.pump(rounds=3, require_quiet=False)
    assert ring.servers[2].pending, "write must be pending at server 2"
    rop = ring.read(2)
    assert not ring.acks_for(rop), "read waits behind the pending write"
    ring.pump()
    assert ring.acks_for(wop)
    racks = ring.acks_for(rop)
    assert racks and racks[0].value == new
