"""Unit tests for the remaining simulator pieces: RNG streams, tracing,
processes, fault plans, topology routing and the round model engine."""

import pytest

from repro.errors import ConfigurationError, CrashedProcessError, SimulationError
from repro.rounds.model import RoundModel, RoundNode, RoundSend
from repro.sim.env import SimEnv
from repro.sim.faults import FaultPlan
from repro.sim.process import SimProcess
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.topology import build_dual_network, build_shared_network
from repro.sim.trace import TraceRecorder


# -- RNG ----------------------------------------------------------------


def test_rng_streams_are_deterministic():
    a = RngRegistry(42).stream("x")
    b = RngRegistry(42).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_streams_are_independent():
    reg = RngRegistry(42)
    x = reg.stream("x")
    _ = [x.random() for _ in range(100)]  # draining x must not affect y
    y1 = reg.stream("y").random()
    y2 = RngRegistry(42).stream("y").random()
    assert y1 == y2


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_rng_fork():
    child1 = RngRegistry(7).fork("w")
    child2 = RngRegistry(7).fork("w")
    assert child1.stream("s").random() == child2.stream("s").random()


# -- Trace ----------------------------------------------------------------


def test_trace_counters():
    trace = TraceRecorder()
    trace.count("x")
    trace.count("x", 4)
    assert trace.counters["x"] == 5
    trace.reset_counters()
    assert trace.counters["x"] == 0


def test_trace_events_only_when_enabled():
    off = TraceRecorder()
    off.emit(1.0, "boom")
    assert off.events == []
    on = TraceRecorder(record_events=True)
    on.emit(1.0, "boom", "detail")
    on.emit(2.0, "other")
    assert len(list(on.of_kind("boom"))) == 1
    assert on.last("other").time == 2.0
    assert on.last("missing") is None


# -- Processes and fault plans -------------------------------------------


def test_process_crash_fires_listeners_once():
    env = SimEnv()
    proc = SimProcess(env, "p")
    crashes = []
    proc.on_crash(crashes.append)
    proc.crash()
    proc.crash()
    assert len(crashes) == 1
    assert not proc.alive
    with pytest.raises(CrashedProcessError):
        proc.check_alive()


def test_fault_plan_sequential_schedule():
    plan = FaultPlan.sequential(["a", "b"], first_at=1.0, spacing=0.5)
    assert [(c.process_name, c.time) for c in plan.crashes] == [("a", 1.0), ("b", 1.5)]


def test_fault_plan_applies_crashes():
    env = SimEnv()
    procs = {"a": SimProcess(env, "a"), "b": SimProcess(env, "b")}
    FaultPlan.sequential(["a", "b"], 1.0, 1.0).apply(env, procs)
    env.run(until=1.5)
    assert not procs["a"].alive and procs["b"].alive
    env.run_until_idle()
    assert not procs["b"].alive


def test_fault_plan_unknown_process():
    env = SimEnv()
    with pytest.raises(ConfigurationError):
        FaultPlan().crash("ghost", 1.0).apply(env, {})


# -- Topology --------------------------------------------------------------


def test_dual_network_routes():
    env = SimEnv()
    topo = build_dual_network(env, ["s0", "s1"], ["c0"])
    src, dst, net = topo.nic_for("s0", "s1")
    assert net.name == "srv"
    src, dst, net = topo.nic_for("s0", "c0")
    assert net.name == "cli"
    src, dst, net = topo.nic_for("c0", "s1")
    assert net.name == "cli"


def test_shared_network_routes():
    env = SimEnv()
    topo = build_shared_network(env, ["s0", "s1"], ["c0"])
    assert topo.nic_for("s0", "s1")[2].name == "lan"
    assert topo.nic_for("s0", "c0")[2].name == "lan"
    assert topo.shared_network("s0", "s1", "c0").name == "lan"


def test_topology_rejects_duplicates_and_unknowns():
    env = SimEnv()
    topo = build_dual_network(env, ["s0"], [])
    with pytest.raises(ConfigurationError):
        topo.add_process("s0", ["srv"])
    with pytest.raises(ConfigurationError):
        topo.nic_for("s0", "ghost")


# -- Round model engine -----------------------------------------------------


class _Echo(RoundNode):
    def __init__(self, name, peer=None):
        self.name = name
        self.peer = peer
        self.got = []

    def on_round(self, round_no, inbox):
        if "net" in inbox:
            self.got.append((round_no, inbox["net"]))
        if self.peer and round_no == 1:
            return [RoundSend(self.peer, "net", f"hi from {self.name}")]
        return []


def test_round_model_delivers_next_round():
    model = RoundModel()
    a, b = _Echo("a", peer="b"), _Echo("b")
    model.add(a)
    model.add(b)
    model.run(2)
    assert b.got == [(2, "hi from a")]


def test_round_model_collisions_destroy():
    model = RoundModel()
    target = _Echo("t")
    model.add(target)
    model.add(_Echo("x", peer="t"))
    model.add(_Echo("y", peer="t"))
    model.run(3)
    assert target.got == []
    assert model.collisions == 1


def test_round_model_collision_queue_policy():
    model = RoundModel(collision_policy="queue")
    target = _Echo("t")
    model.add(target)
    model.add(_Echo("x", peer="t"))
    model.add(_Echo("y", peer="t"))
    model.run(3)
    assert [r for r, _m in target.got] == [2, 3], "one delivery per round"


def test_round_model_rejects_unknown_destination():
    model = RoundModel()
    model.add(_Echo("a", peer="ghost"))
    with pytest.raises(SimulationError):
        model.run(1)


def test_round_model_rejects_bad_policy():
    with pytest.raises(SimulationError):
        RoundModel(collision_policy="wat")
