"""Session guarantees across batch-frame boundaries.

Batching shares a wire frame between segments but must not weaken any
session-layer guarantee.  These regression tests drive a sender/receiver
session pair through frame-granularity fault plans — whole batch frames
dropped, duplicated and reordered, the way a TCP-like transport loses
frames — and assert FIFO delivery, cumulative acknowledgement and
duplicate suppression hold exactly as they do unbatched.
"""

from repro.core.messages import Commit, OpId, PreWrite
from repro.core.tags import Tag
from repro.transport.codec import decode_message, encode_message
from repro.transport.reliable import (
    ReliableSession,
    decode_frame,
    encode_batch,
    encode_segment,
)


def _messages(n: int) -> list:
    return [
        PreWrite(Tag(i + 1, 0), b"v%03d" % i, OpId(7, i)) for i in range(n)
    ]


def _frame(segments) -> bytes:
    if len(segments) == 1:
        return encode_segment(segments[0], encode_message)
    return encode_batch(segments, encode_message)


def _receive(receiver: ReliableSession, wire: bytes, now: float = 0.0) -> list:
    delivered = []
    for segment in decode_frame(wire, decode_message):
        delivered.extend(receiver.on_segment(segment, now))
    return delivered


def test_fifo_holds_when_batch_frames_reorder():
    """Frame 2 arriving before frame 1 must stall delivery until the gap
    fills, then release everything in send order."""
    sender, receiver = ReliableSession(), ReliableSession()
    mix = _messages(6)
    segs = [sender.send(m, 0.0) for m in mix]
    frame1 = _frame(segs[0:3])
    frame2 = _frame(segs[3:6])
    assert _receive(receiver, frame2) == []  # buffered: seqs 4-6 early
    assert receiver.stats.reorders_buffered == 3
    assert _receive(receiver, frame1) == mix  # gap filled: all six, in order
    assert receiver.make_ack().ack == 6


def test_duplicated_batch_frame_is_fully_suppressed():
    sender, receiver = ReliableSession(), ReliableSession()
    mix = _messages(4)
    segs = [sender.send(m, 0.0) for m in mix]
    wire = _frame(segs)
    assert _receive(receiver, wire) == mix
    assert _receive(receiver, wire) == []  # exact duplicate of the frame
    assert receiver.stats.dups_suppressed == 4
    assert receiver.make_ack().ack == 4  # re-acked so the sender converges


def test_one_cumulative_ack_covers_a_whole_batch():
    sender, receiver = ReliableSession(), ReliableSession()
    mix = _messages(5)
    segs = [sender.send(m, 0.0) for m in mix]
    _receive(receiver, _frame(segs))
    assert sender.in_flight == 5
    sender.on_segment(receiver.make_ack(), 0.1)
    assert sender.in_flight == 0
    assert sender.retransmit_deadline is None


def test_dropped_batch_retransmits_and_interleaves_with_fresh_batch():
    """The regression scenario from the issue: a batch frame is lost,
    the sender keeps sending fresh batches, and the retransmitted batch
    later interleaves with them — delivery must come out exactly once,
    in order, across the seam."""
    sender, receiver = ReliableSession(), ReliableSession()
    first = _messages(3)
    segs_first = [sender.send(m, 0.0) for m in first]
    _frame(segs_first)  # the nemesis drops this frame on the floor

    # Fresh traffic while the loss is undetected.
    fresh = [
        PreWrite(Tag(100 + i, 1), b"f%03d" % i, OpId(9, i)) for i in range(3)
    ]
    segs_fresh = [sender.send(m, 0.2) for m in fresh]
    assert _receive(receiver, _frame(segs_fresh), now=0.2) == []  # seqs 4-6 early

    # The retransmit timer fires; poll returns everything unacked (the
    # lost batch *and* the buffered fresh one) chunked by the caller.
    due = sender.poll(sender.retransmit_deadline)
    assert [s.seq for s in due] == [1, 2, 3, 4, 5, 6]
    retx_frame = _frame(due[0:3])  # runtime chunks; first chunk = lost batch
    delivered = _receive(receiver, retx_frame, now=0.3)
    assert delivered == first + fresh  # gap filled; FIFO across the seam

    # The second retransmitted chunk arrives late: pure duplicates.
    assert _receive(receiver, _frame(due[3:6]), now=0.3) == []
    assert receiver.stats.dups_suppressed == 3
    assert receiver.stats.delivered == 6

    # One ack covers everything, including the retransmissions.
    sender.on_segment(receiver.make_ack(), 0.4)
    assert sender.in_flight == 0


def test_retransmitted_batch_after_partial_delivery():
    """Drop only the second of two batch frames: the ack for the first
    must trim the retransmission to the lost suffix."""
    sender, receiver = ReliableSession(), ReliableSession()
    mix = _messages(6)
    segs = [sender.send(m, 0.0) for m in mix]
    assert _receive(receiver, _frame(segs[0:3])) == mix[0:3]
    # frame 2 dropped; receiver acks what it has.
    sender.on_segment(receiver.make_ack(), 0.1)
    assert sender.in_flight == 3
    due = sender.poll(sender.retransmit_deadline)
    assert [s.seq for s in due] == [4, 5, 6]
    assert _receive(receiver, _frame(due), now=0.3) == mix[3:6]
    sender.on_segment(receiver.make_ack(), 0.4)
    assert sender.in_flight == 0


def test_mixed_plain_and_batched_frames_on_one_link():
    """A sender may batch opportunistically — singletons travel as plain
    segments, bursts as batches — and the receiver cannot tell."""
    sender, receiver = ReliableSession(), ReliableSession()
    mix = _messages(7)
    segs = [sender.send(m, 0.0) for m in mix]
    delivered = []
    delivered += _receive(receiver, _frame(segs[0:1]))  # plain
    delivered += _receive(receiver, _frame(segs[1:5]))  # batch of 4
    delivered += _receive(receiver, _frame(segs[5:6]))  # plain
    delivered += _receive(receiver, _frame(segs[6:7]))  # plain
    assert delivered == mix
    assert receiver.make_ack().ack == 7


def test_pure_ack_rides_inside_a_batch():
    """A batch may carry a pure-ack segment (e.g. chunked replay after
    reconnect); its cumulative ack must take effect."""
    a, b = ReliableSession(), ReliableSession()
    outbound = [a.send(m, 0.0) for m in _messages(2)]
    for seg in outbound:
        b.on_segment(seg, 0.0)
    # b replies with one data segment batched together with a pure ack.
    reply = b.send(Commit((Tag(1, 0),)), 0.1)
    wire = encode_batch([reply, b.make_ack()], encode_message)
    delivered = []
    for seg in decode_frame(wire, decode_message):
        delivered.extend(a.on_segment(seg, 0.2))
    assert delivered == [Commit((Tag(1, 0),))]
    assert a.in_flight == 0  # the ack (on both segments) cleared our sends
