"""Unit tests for the wire cost model."""

import pytest

from repro.sim.wire import WireModel


def test_single_segment_message():
    wire = WireModel()
    # 1000 bytes + 32 header fits one segment: + 78 overhead.
    assert wire.wire_bytes(1000) == 1000 + 32 + 78


def test_multi_segment_message():
    wire = WireModel()
    # 4096 + 32 = 4128 app bytes -> 3 segments of 1448.
    assert wire.wire_bytes(4096) == 4096 + 32 + 3 * 78


def test_minimum_frame_applies():
    wire = WireModel()
    assert wire.wire_bytes(0) == max(84, 0 + 32 + 78)
    tiny = WireModel(app_header=0, segment_overhead=0)
    assert tiny.wire_bytes(1) == 84


def test_tx_time_scales_with_bandwidth():
    wire = WireModel()
    t100 = wire.tx_time(4096, 100e6)
    t1000 = wire.tx_time(4096, 1e9)
    assert abs(t100 / t1000 - 10.0) < 1e-9
    # 4362 wire bytes at 100 Mbit/s ~ 349 us.
    assert abs(t100 - 4362 * 8 / 100e6) < 1e-12


def test_efficiency_improves_with_payload():
    wire = WireModel()
    assert wire.efficiency(256) < wire.efficiency(4096) < 1.0
    # The regime behind the paper's ~90 Mbit/s on 100 Mbit/s links.
    assert 0.90 < wire.efficiency(4096) < 0.96


def test_invalid_inputs():
    wire = WireModel()
    with pytest.raises(ValueError):
        wire.wire_bytes(-1)
    with pytest.raises(ValueError):
        wire.tx_time(100, 0)
