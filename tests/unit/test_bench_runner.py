"""The perf-snapshot runner: determinism, wire accounting, the gate.

The snapshots committed as BENCH_*.json are only trustworthy if (a) the
simulated numbers are bit-deterministic per seed, (b) batching at the
default depth changes the wire accounting but not the simulated result
on the dedicated-ring topology, and (c) the regression gate actually
fails on a drop.  All three are pinned here; the CLI round-trip runs on
a shrunken scenario so the tier-1 suite stays fast.
"""

import json

import pytest

from repro.bench import runner
from repro.bench.runner import (
    Scenario,
    check_regression,
    run_scenario,
    run_suite,
)
from repro.workload.scenarios import write_only_scenario

#: One small, fast measurement point (2 servers, quick windows).
TINY = Scenario("tiny_write_2", write_only_scenario, servers=2)


def test_simulated_numbers_are_seed_deterministic():
    a = run_scenario(TINY, seed=7, quick=True)
    b = run_scenario(TINY, seed=7, quick=True)
    # Wall-clock fields differ run to run; everything simulated must not.
    for record in (a, b):
        record.pop("wall_seconds")
        record.pop("wall_ops_per_s")
    assert a == b


def test_batching_changes_wire_accounting_not_simulated_result():
    batched = run_scenario(TINY, seed=7, quick=True)
    unbatched = run_scenario(
        TINY, seed=7, quick=True,
        protocol=runner.ProtocolConfig(batch_max_messages=1),
    )
    assert batched["wire"]["batched_frames"] > 0
    assert unbatched["wire"]["batched_frames"] == 0
    # Simulated behaviour is preserved at the default depth: throughput
    # and latency move by at most a fraction of a percent (frame timing
    # shifts slightly; no store-and-forward penalty).
    assert batched["write"]["sim_ops_per_s"] == pytest.approx(
        unbatched["write"]["sim_ops_per_s"], rel=0.02
    )
    assert batched["write"]["p50_ms"] == pytest.approx(
        unbatched["write"]["p50_ms"], rel=0.02
    )
    assert (
        batched["wire"]["messages_per_op"] < unbatched["wire"]["messages_per_op"]
    ), "batch frames must coalesce unicasts"
    assert batched["wire"]["bytes_per_op"] < unbatched["wire"]["bytes_per_op"] * 1.01


def _snapshot(rate: float) -> dict:
    return {
        "scenarios": [
            {
                "name": "s",
                "read": {"ops": 0, "sim_ops_per_s": 0.0},
                "write": {"ops": 100, "sim_ops_per_s": rate},
            }
        ]
    }


def test_check_regression_flags_only_real_drops():
    baseline = _snapshot(1000.0)
    assert check_regression(_snapshot(1000.0), baseline) == []
    assert check_regression(_snapshot(850.0), baseline) == []  # within 20%
    failures = check_regression(_snapshot(700.0), baseline)
    assert len(failures) == 1 and "s/write" in failures[0]
    # Scenarios unknown to the baseline are ignored, not failed.
    renamed = _snapshot(700.0)
    renamed["scenarios"][0]["name"] = "other"
    assert check_regression(renamed, baseline) == []


def test_check_regression_announces_skipped_scenarios(capsys):
    """A scenario the baseline does not know must be *announced*, not
    silently ignored — an unannounced skip is how a renamed scenario
    slips past the gate ungated."""
    renamed = _snapshot(700.0)
    renamed["scenarios"][0]["name"] = "other"
    assert check_regression(renamed, _snapshot(1000.0)) == []
    assert "skipped: other (not in baseline)" in capsys.readouterr().out


def test_cli_writes_snapshot_and_gates(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "SCENARIOS", (TINY,))
    assert runner.main(["--tag", "a", "--out", str(tmp_path)]) == 0
    path = tmp_path / "BENCH_a.json"
    snapshot = json.loads(path.read_text())
    assert snapshot["schema"] == runner.SCHEMA_VERSION
    assert snapshot["batch_max_messages"] == runner.ProtocolConfig().batch_max_messages
    [record] = snapshot["scenarios"]
    assert record["write"]["ops"] > 0
    assert record["wire"]["bytes_per_op"] > 0

    # Gating against itself passes; against an inflated baseline, fails.
    assert runner.main(
        ["--tag", "b", "--out", str(tmp_path),
         "--check-regression", str(path)]
    ) == 0
    record["write"]["sim_ops_per_s"] *= 2
    inflated = tmp_path / "BENCH_inflated.json"
    inflated.write_text(json.dumps(snapshot))
    assert runner.main(
        ["--tag", "c", "--out", str(tmp_path),
         "--check-regression", str(inflated)]
    ) == 1


def test_cli_rejects_window_mismatch_and_bad_flags(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "SCENARIOS", (TINY,))
    assert runner.main(["--tag", "quickbase", "--out", str(tmp_path)]) == 0
    # A --full run must refuse to gate against a quick-window baseline:
    # the windows differ, so the ops/s comparison would be meaningless.
    assert runner.main(
        ["--tag", "full", "--out", str(tmp_path), "--full",
         "--check-regression", str(tmp_path / "BENCH_quickbase.json")]
    ) == 1
    with pytest.raises(SystemExit):
        runner.main(["--no-batch", "--batch", "2", "--out", str(tmp_path)])
    with pytest.raises(SystemExit):
        runner.main(["--batch", "0", "--out", str(tmp_path)])
