"""Unit tests for configuration validation."""

import pytest

from repro.core.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.runtime.sim_net import ClusterConfig
from repro.workload.generator import WorkloadSpec


def test_protocol_defaults_valid():
    config = ProtocolConfig().validate()
    assert config.piggyback_commits and config.fair_forwarding


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_piggybacked_commits": 0},
        {"client_timeout": 0},
        {"client_max_retries": -1},
    ],
)
def test_protocol_rejects_bad_values(kwargs):
    with pytest.raises(ConfigurationError):
        ProtocolConfig(**kwargs).validate()


def test_cluster_config_validation():
    ClusterConfig(num_servers=2).validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_servers=0).validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_servers=2, topology="mesh").validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_servers=2, detection_delay=0).validate()


def test_workload_spec_validation():
    WorkloadSpec().validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(reader_machines_per_server=-1).validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(reader_concurrency=0).validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(value_size=4).validate()
