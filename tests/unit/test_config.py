"""Unit tests for configuration validation."""

import pytest

from repro.core.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.runtime.sim_net import ClusterConfig
from repro.workload.generator import WorkloadSpec


def test_protocol_defaults_valid():
    config = ProtocolConfig().validate()
    assert config.piggyback_commits and config.fair_forwarding


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_piggybacked_commits": 0},
        {"client_timeout": 0},
        {"client_max_retries": -1},
    ],
)
def test_protocol_rejects_bad_values(kwargs):
    with pytest.raises(ConfigurationError):
        ProtocolConfig(**kwargs).validate()


def test_cluster_config_validation():
    ClusterConfig(num_servers=2).validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_servers=0).validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_servers=2, topology="mesh").validate()
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_servers=2, detection_delay=0).validate()


def test_workload_spec_validation():
    WorkloadSpec().validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(reader_machines_per_server=-1).validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(reader_concurrency=0).validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(value_size=4).validate()


def test_value_coding_validation():
    ProtocolConfig(
        value_coding="coded", coding_k=2, coding_n=4, view_quorum=True
    ).validate()
    with pytest.raises(ConfigurationError, match="value_coding"):
        ProtocolConfig(value_coding="striped").validate()
    # Coded mode leans on quorum-installed views for its >= k liveness.
    with pytest.raises(ConfigurationError, match="view_quorum"):
        ProtocolConfig(value_coding="coded", coding_k=2, coding_n=4).validate()
    with pytest.raises(ConfigurationError, match="coding_k"):
        ProtocolConfig(
            value_coding="coded", coding_k=0, coding_n=4, view_quorum=True
        ).validate()
    with pytest.raises(ConfigurationError, match="coding_k"):
        ProtocolConfig(
            value_coding="coded", coding_k=5, coding_n=4, view_quorum=True
        ).validate()
    # n - f >= k liveness bound: k=3 of n=4 breaks with one crash.
    with pytest.raises(ConfigurationError, match="liveness"):
        ProtocolConfig(
            value_coding="coded", coding_k=4, coding_n=5, view_quorum=True
        ).validate()
    # Replicated mode ignores the coding knobs entirely.
    ProtocolConfig(value_coding="replicated", coding_k=99, coding_n=1).validate()
