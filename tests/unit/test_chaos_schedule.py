"""Unit tests for chaos schedule generation.

Pins the generator invariants the runner relies on — most importantly
that the historic ``len(clients) == 0`` guard on the partition branch
was dead code: every generated schedule has at least two writers and two
readers, so the client-partition branch is always reachable and the
50/50 ring/client split is exactly what the RNG draw decides.
"""

from repro.chaos.schedule import (
    AGGRESSIVE_CLIENT_TIMEOUT,
    CODED_PROFILE,
    CORE_PROFILE,
    GENTLE_PROFILE,
    generate_schedule,
)


def test_generated_schedules_always_have_clients():
    """The generator cannot produce a zero-client plan: writers are
    drawn from [2,3] and readers from [2,4], so the partition branch's
    old `or len(clients) == 0` fallback could never fire."""
    for index in range(100):
        schedule = generate_schedule(seed=13, index=index)
        assert schedule.writers >= 2
        assert schedule.readers >= 2
        assert schedule.num_clients == schedule.writers + schedule.readers


def test_partition_branch_covers_both_ring_and_client_splits():
    """With the dead guard gone, the 50/50 draw alone decides the
    partition flavour — across many schedules both must appear."""
    ring_partitions = 0
    client_partitions = 0
    for index in range(200):
        schedule = generate_schedule(seed=13, index=index)
        for partition in schedule.plan.partitions:
            names = {name for group in partition.groups for name in group}
            if any(name.startswith("c") for name in names):
                client_partitions += 1
            else:
                ring_partitions += 1
    assert ring_partitions > 0
    assert client_partitions > 0


def test_partition_groups_never_contain_unknown_processes():
    for index in range(50):
        schedule = generate_schedule(seed=21, index=index)
        known = {f"s{i}" for i in range(schedule.num_servers)}
        known |= {f"c{i}" for i in range(schedule.num_clients)}
        for partition in schedule.plan.partitions:
            for group in partition.groups:
                assert set(group) <= known


def test_core_profile_uses_the_aggressive_timeout():
    for index in range(20):
        schedule = generate_schedule(seed=3, index=index, profile=CORE_PROFILE)
        assert schedule.config.client_timeout == AGGRESSIVE_CLIENT_TIMEOUT
        assert schedule.config.client_max_retries > 0
        assert schedule.deadline > schedule.workload_span


def test_coded_profile_configures_striping_within_liveness_bound():
    """The coded profile must turn on the coded backend with epoch-
    guarded views and keep k within the liveness bound (a quorum-
    installed view always retains at least k fragment holders)."""
    for index in range(20):
        schedule = generate_schedule(
            seed=3, index=index, num_servers=4, profile=CODED_PROFILE
        )
        config = schedule.config
        assert config.value_coding == "coded"
        assert config.view_quorum
        assert config.coding_n == schedule.num_servers
        assert 1 < config.coding_k <= config.coding_n // 2 + 1
        assert schedule.plan.partitions, "coded profile guarantees partitions"


def test_gentle_profile_still_disables_retries():
    for index in range(10):
        schedule = generate_schedule(seed=3, index=index, profile=GENTLE_PROFILE)
        assert schedule.config.client_max_retries == 0
        assert not schedule.plan.crashes
        for fault in schedule.plan.link_faults:
            assert fault.profile.drop_p == 0.0 and fault.profile.dup_p == 0.0
