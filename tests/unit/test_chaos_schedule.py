"""Unit tests for chaos schedule generation.

Pins the generator invariants the runner relies on — most importantly
that the historic ``len(clients) == 0`` guard on the partition branch
was dead code: every generated schedule has at least two writers and two
readers, so the client-partition branch is always reachable and the
50/50 ring/client split is exactly what the RNG draw decides.
"""

from repro.chaos.schedule import (
    AGGRESSIVE_CLIENT_TIMEOUT,
    CODED_PROFILE,
    CORE_PROFILE,
    GENTLE_PROFILE,
    SKEW_PROFILE,
    generate_schedule,
)


def test_generated_schedules_always_have_clients():
    """The generator cannot produce a zero-client plan: writers are
    drawn from [2,3] and readers from [2,4], so the partition branch's
    old `or len(clients) == 0` fallback could never fire."""
    for index in range(100):
        schedule = generate_schedule(seed=13, index=index)
        assert schedule.writers >= 2
        assert schedule.readers >= 2
        assert schedule.num_clients == schedule.writers + schedule.readers


def test_partition_branch_covers_both_ring_and_client_splits():
    """With the dead guard gone, the 50/50 draw alone decides the
    partition flavour — across many schedules both must appear."""
    ring_partitions = 0
    client_partitions = 0
    for index in range(200):
        schedule = generate_schedule(seed=13, index=index)
        for partition in schedule.plan.partitions:
            names = {name for group in partition.groups for name in group}
            if any(name.startswith("c") for name in names):
                client_partitions += 1
            else:
                ring_partitions += 1
    assert ring_partitions > 0
    assert client_partitions > 0


def test_partition_groups_never_contain_unknown_processes():
    for index in range(50):
        schedule = generate_schedule(seed=21, index=index)
        known = {f"s{i}" for i in range(schedule.num_servers)}
        known |= {f"c{i}" for i in range(schedule.num_clients)}
        for partition in schedule.plan.partitions:
            for group in partition.groups:
                assert set(group) <= known


def test_core_profile_uses_the_aggressive_timeout():
    for index in range(20):
        schedule = generate_schedule(seed=3, index=index, profile=CORE_PROFILE)
        assert schedule.config.client_timeout == AGGRESSIVE_CLIENT_TIMEOUT
        assert schedule.config.client_max_retries > 0
        assert schedule.deadline > schedule.workload_span


def test_coded_profile_configures_striping_within_liveness_bound():
    """The coded profile must turn on the coded backend with epoch-
    guarded views and keep k within the liveness bound (a quorum-
    installed view always retains at least k fragment holders)."""
    for index in range(20):
        schedule = generate_schedule(
            seed=3, index=index, num_servers=4, profile=CODED_PROFILE
        )
        config = schedule.config
        assert config.value_coding == "coded"
        assert config.view_quorum
        assert config.coding_n == schedule.num_servers
        assert 1 < config.coding_k <= config.coding_n // 2 + 1
        assert schedule.plan.partitions, "coded profile guarantees partitions"


def test_skew_profile_pins_cluster_size_to_its_rings():
    """Placement rings are literal server ids, so the generator must
    override whatever num_servers the caller passes."""
    for requested in (4, 6, 9):
        schedule = generate_schedule(
            seed=11, index=0, num_servers=requested, profile=SKEW_PROFILE
        )
        assert schedule.num_servers == 4
        assert schedule.num_blocks == 8


def test_skew_crashes_target_the_destination_ring_and_always_restart():
    """Every crash lands on a ring-1 member inside the migration window
    and is paired with a restart — the abort path is under attack, but a
    permanent destination crash would make the migration gate
    unreachable by construction."""
    destination = {f"s{sid}" for sid in SKEW_PROFILE.rings[-1]}
    saw_crash = False
    for index in range(60):
        schedule = generate_schedule(seed=11, index=index, profile=SKEW_PROFILE)
        crashes = {
            fault.process_name: fault.time for fault in schedule.plan.crashes
        }
        restarts = {fault.process_name for fault in schedule.plan.restarts}
        for victim, at in crashes.items():
            saw_crash = True
            assert victim in destination, (
                f"crash on {victim} outside the destination ring"
            )
            assert 0.2 <= at <= 0.9
        assert set(crashes) <= restarts, "every skew crash must restart"
    assert saw_crash


def test_skew_profile_never_partitions():
    """A cut between rings only stalls whole blocks without touching the
    migration machinery, so the profile leaves partitions to the others."""
    for index in range(60):
        schedule = generate_schedule(seed=11, index=index, profile=SKEW_PROFILE)
        assert not schedule.plan.partitions
        assert schedule.writers >= 2 and schedule.readers >= 2


def test_gentle_profile_still_disables_retries():
    for index in range(10):
        schedule = generate_schedule(seed=3, index=index, profile=GENTLE_PROFILE)
        assert schedule.config.client_max_retries == 0
        assert not schedule.plan.crashes
        for fault in schedule.plan.link_faults:
            assert fault.profile.drop_p == 0.0 and fault.profile.dup_p == 0.0
