"""Unit tests for the (ts, server_id) tag order."""

import pytest

from repro.core.tags import Tag, max_tag


def test_lexicographic_order_ts_dominates():
    assert Tag(1, 5) < Tag(2, 0)
    assert Tag(2, 0) > Tag(1, 5)


def test_lexicographic_order_id_breaks_ties():
    assert Tag(3, 1) < Tag(3, 2)
    assert not Tag(3, 2) < Tag(3, 1)


def test_zero_is_smallest():
    assert Tag.ZERO < Tag(1, 0)
    assert Tag.ZERO < Tag(0, 0)  # server ids are >= 0


def test_equality_and_hash():
    assert Tag(4, 2) == Tag(4, 2)
    assert hash(Tag(4, 2)) == hash(Tag(4, 2))
    assert Tag(4, 2) != Tag(4, 3)


def test_next_for_increments_ts_and_stamps_id():
    tag = Tag(7, 3).next_for(1)
    assert tag == Tag(8, 1)
    assert tag > Tag(7, 3)


def test_max_tag_empty_is_zero():
    assert max_tag([]) is Tag.ZERO


def test_max_tag_picks_lexicographic_maximum():
    tags = [Tag(2, 1), Tag(3, 0), Tag(2, 9)]
    assert max_tag(tags) == Tag(3, 0)


def test_total_ordering_derives_ge_le():
    assert Tag(1, 1) <= Tag(1, 1)
    assert Tag(2, 1) >= Tag(1, 9)


def test_comparison_with_non_tag_raises():
    with pytest.raises(TypeError):
        _ = Tag(1, 1) < 5
