"""Unit tests for crash handling and ring reconfiguration.

Driven through the lossless in-memory ring harness; crashes are
modelled as perfect-FD notifications delivered to every survivor (the
messages a crashed server would have sent are simply never produced,
because the harness stops pulling from it).
"""

from tests.helpers import RingHarness

from repro.core.messages import OpId, WriteAck
from repro.core.tags import Tag


class CrashableHarness(RingHarness):
    """RingHarness where crashed servers stop sending and receiving."""

    def __init__(self, n, config=None):
        super().__init__(n, config)
        self.dead: set[int] = set()

    def crash(self, server_id: int) -> None:
        self.dead.add(server_id)
        for server in self.servers:
            if server.server_id not in self.dead and server.server_id != server_id:
                self.replies.extend(server.on_server_crash(server_id))

    def pump(self, rounds: int = 1) -> None:
        for _ in range(rounds):
            for server in self.servers:
                if server.server_id in self.dead:
                    continue
                message = server.next_ring_message()
                if message is not None:
                    self.in_flight.append((server.successor, message))
            deliveries, self.in_flight = self.in_flight, []
            for dst, message in deliveries:
                if dst in self.dead:
                    continue  # died with the crashed server
                self.replies.extend(self.servers[dst].on_ring_message(message))
                self.replies.extend(self.servers[dst].drain_replies())

    def pump_until_quiet(self, max_rounds: int = 300) -> None:
        for _ in range(max_rounds):
            alive = [s for s in self.servers if s.server_id not in self.dead]
            if not self.in_flight and not any(s.has_ring_work for s in alive):
                return
            self.pump()
        raise AssertionError("ring did not quiesce")

    def alive_servers(self):
        return [s for s in self.servers if s.server_id not in self.dead]


def test_idle_crash_reconfigures_ring():
    h = CrashableHarness(4)
    h.crash(2)
    h.pump_until_quiet()
    for server in h.alive_servers():
        assert server.ring.dead == {2}
        assert not server.paused
    assert h.server(1).successor == 3, "predecessor spliced around the crash"


def test_write_completes_despite_crash_of_midpath_server():
    h = CrashableHarness(4)
    op = h.client_write(0, b"v")
    h.pump(1)  # pre-write at s1
    h.crash(2)  # the next hop dies before forwarding
    h.pump_until_quiet()
    assert len(h.acks_for(op)) == 1
    for server in h.alive_servers():
        assert server.value == b"v"
        assert not server.pending


def test_write_with_prewrite_lost_at_crashed_server():
    h = CrashableHarness(4)
    op = h.client_write(0, b"v")
    h.pump(1)  # s1 holds the pre-write in its forward queue
    # s1 crashes while the message is queued there: the only remaining
    # copy is s0's pending entry; the merge must resurrect it.
    h.crash(1)
    h.pump_until_quiet()
    assert len(h.acks_for(op)) == 1
    for server in h.alive_servers():
        assert server.value == b"v"


def test_orphaned_write_of_crashed_origin_completes():
    """A write whose *origin* dies mid-protocol must still commit
    (its pre-write circled through survivors), so blocked reads are
    eventually answered."""
    h = CrashableHarness(4)
    h.client_write(1, b"orphan", client=77)
    h.pump(3)  # s2 and s3 forwarded the pre-write: both hold it pending
    read_op = h.client_read(3)
    assert h.acks_for(read_op) == [], "read waits on the pending write"
    h.crash(1)  # origin dies; nobody will send its commit
    h.pump_until_quiet()
    acks = h.acks_for(read_op)
    assert len(acks) == 1, "read must not block forever"
    assert acks[0].message.value == b"orphan"
    for server in h.alive_servers():
        assert not server.pending


def test_client_retry_after_origin_crash_is_deduplicated():
    h = CrashableHarness(4)
    op = OpId(55, 0)
    from repro.core.messages import ClientWrite

    h.server(1).on_client_message(55, ClientWrite(op, b"v"))
    h.pump(2)  # pre-write out; origin will die before acking
    h.crash(1)
    h.pump_until_quiet()
    # Client times out and retries the SAME op at another server.
    h.replies.extend(h.server(3).on_client_message(55, ClientWrite(op, b"v")))
    h.pump_until_quiet()
    acks = [r for r in h.acks_for(op) if isinstance(r.message, WriteAck)]
    assert len(acks) == 1, "retry must be deduplicated, not re-executed"
    assert sum(s.stats_writes_initiated for s in h.alive_servers()) <= 1


def test_sequential_crashes_down_to_one_server():
    h = CrashableHarness(5)
    for round_no, victim in enumerate([1, 2, 3, 0]):
        op = h.client_write(4, b"epoch-%d" % round_no, client=60 + round_no)
        h.pump_until_quiet()
        assert len(h.acks_for(op)) == 1
        h.crash(victim)
        h.pump_until_quiet()
    survivor = h.server(4)
    assert survivor.alone
    op = h.client_write(4, b"final", client=99)
    assert len(h.acks_for(op)) == 1, "single survivor serves writes locally"
    read_op = h.client_read(4)
    assert h.acks_for(read_op)[0].message.value == b"final"


def test_crash_during_commit_phase_still_acks_everyone():
    h = CrashableHarness(4)
    op = h.client_write(0, b"v")
    h.pump(4)  # pre-write circled; commit is now circulating
    h.crash(2)
    h.pump_until_quiet()
    assert len(h.acks_for(op)) == 1
    for server in h.alive_servers():
        assert server.value == b"v"
        assert not server.pending


def test_reads_deferred_during_reconfig_get_answered():
    h = CrashableHarness(4)
    h.client_write(0, b"v")
    h.pump_until_quiet()
    h.crash(1)
    # While paused (before the token finishes), reads are deferred.
    read_op = h.client_read(3)
    h.pump_until_quiet()
    acks = h.acks_for(read_op)
    assert len(acks) == 1 and acks[0].message.value == b"v"


def test_monotone_state_across_reconfig():
    h = CrashableHarness(4)
    h.client_write(0, b"a")
    h.pump_until_quiet()
    h.crash(3)
    h.pump_until_quiet()
    op = h.client_write(1, b"b", client=70)
    h.pump_until_quiet()
    assert len(h.acks_for(op)) == 1
    tags = {s.tag for s in h.alive_servers()}
    assert len(tags) == 1
    assert tags.pop() > Tag(1, 0)


def test_two_crashes_in_quick_succession():
    h = CrashableHarness(5)
    op = h.client_write(0, b"v")
    h.pump(1)
    h.crash(2)
    h.crash(3)  # second crash before the first reconfig completes
    h.pump_until_quiet()
    assert len(h.acks_for(op)) == 1
    for server in h.alive_servers():
        assert server.ring.dead == {2, 3}
        assert not server.paused
        assert server.value == b"v"


# ----------------------------------------------------------------------
# Crash recovery: the rejoin handshake at the protocol level.
# ----------------------------------------------------------------------


def test_rejoin_handshake_folds_restarted_server_back_in():
    from repro.core.server import ServerProtocol

    h = CrashableHarness(4)
    h.client_write(0, b"v1", client=70)
    h.pump_until_quiet()
    snapshot = h.server(2).snapshot()  # what the durable store held
    h.crash(2)
    h.pump_until_quiet()
    h.client_write(0, b"v2", client=71)  # committed while s2 is down
    h.pump_until_quiet()

    # "Restart": a fresh protocol restored from the snapshot.
    restored = ServerProtocol.restore(2, (0, 1, 2, 3), snapshot)
    assert restored.rejoining and restored.paused
    assert restored.value == b"v1"  # pre-crash state only
    h.servers[2] = restored
    h.dead.discard(2)

    # The announcement reaches a sponsor; the revived-marked
    # reconfiguration circulates the grown ring and resumes the
    # rejoiner with the merged state.
    restored.queue_rejoin_announce(0)
    sponsor, announce = restored.next_rejoin_announce()
    assert sponsor == 0
    h.replies.extend(h.server(0).on_ring_message(announce))
    h.pump_until_quiet()

    assert not restored.rejoining and not restored.paused
    assert restored.value == b"v2", "caught up before serving"
    for server in h.alive_servers():
        assert server.ring.is_alive(2)
    assert h.server(0).stats_rejoins_sponsored == 1

    # A duplicate (retried) announcement after the fold-in is dropped.
    h.replies.extend(h.server(1).on_ring_message(announce))
    h.pump_until_quiet()
    assert h.server(1).stats_rejoins_sponsored == 0

    # The rejoined server participates fully: a write through it
    # circulates the grown ring and commits everywhere.
    op = h.client_write(2, b"v3", client=72)
    h.pump_until_quiet()
    assert len(h.acks_for(op)) == 1
    for server in h.alive_servers():
        assert server.value == b"v3"
        assert not server.pending


def test_rejoin_request_to_paused_sponsor_is_deferred():
    from repro.core.messages import RejoinRequest
    from repro.core.server import ServerProtocol

    h = CrashableHarness(5)
    h.client_write(0, b"v1", client=80)
    h.pump_until_quiet()
    snapshot = h.server(3).snapshot()
    h.crash(3)
    # Deliver the crash notifications but do NOT let the merge finish:
    # the sponsor is mid-reconfiguration (paused) when the announcement
    # lands.
    sponsor = h.server(2)  # predecessor of 3: the coordinator
    assert sponsor.paused
    restored = ServerProtocol.restore(3, (0, 1, 2, 3, 4), snapshot)
    h.servers[3] = restored
    h.dead.discard(3)
    h.replies.extend(sponsor.on_ring_message(RejoinRequest(3)))
    assert sponsor.ring.is_alive(3) is False, "deferred, not spliced yet"
    h.pump_until_quiet()
    # After its own reconfiguration resumed it, the sponsor processed
    # the deferred request and folded the rejoiner back in.
    assert not restored.rejoining
    assert all(s.ring.is_alive(3) for s in h.alive_servers())
