"""Durable snapshot round trips: stores, serialisation, protocol state.

The crash-recovery contract: a server restored from its snapshot has
*identical* protocol state for everything the snapshot covers — the
committed register, ts_seen, watermarks, completed operations and the
pending set — so no acknowledged operation is forgotten across a crash.
"""

import pytest

from repro.core.durable import (
    SNAPSHOT_VERSION,
    FileSnapshotStore,
    MemorySnapshotStore,
    ServerSnapshot,
)
from repro.core.messages import ClientWrite, Commit, OpId, PendingEntry, PreWrite
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.core.tags import Tag
from repro.errors import ProtocolError


def sample_snapshot() -> ServerSnapshot:
    return ServerSnapshot(
        server_id=1,
        members=(0, 1, 2, 3),
        dead=(2,),
        tag=Tag(7, 1),
        value=b"\x00committed\xff",
        ts_seen=9,
        watermark=((0, 4), (1, 7)),
        completed_ops=((10, 3), (11, 0)),
        pending=(
            PendingEntry(Tag(8, 0), b"in-flight", OpId(10, 4)),
            PendingEntry(Tag(9, 3), b"", OpId(12, 0)),
        ),
        reconfig_counter=5,
        completed_tags=((10, Tag(7, 1)),),
    )


def test_json_round_trip_is_identity():
    snapshot = sample_snapshot()
    assert ServerSnapshot.from_json(snapshot.to_json()) == snapshot


def test_json_round_trip_preserves_frag_tag():
    snapshot = ServerSnapshot(
        server_id=2, members=(0, 1, 2, 3), dead=(), tag=Tag(9, 1),
        value=b"\x01fragment", ts_seen=9, watermark=(), completed_ops=(),
        pending=(), frag_tag=Tag(6, 0),
    )
    restored = ServerSnapshot.from_json(snapshot.to_json())
    assert restored == snapshot
    assert restored.frag_tag == Tag(6, 0)


def test_v2_document_loads_with_frag_tag_none():
    """A pre-coding (v2) snapshot still loads; its value is a whole
    replicated value, so ``frag_tag`` defaults to ``None``."""
    import json

    data = json.loads(sample_snapshot().to_json())
    data["version"] = 2
    del data["frag_tag"]
    restored = ServerSnapshot.from_json(json.dumps(data))
    assert restored == sample_snapshot()
    assert restored.frag_tag is None


def test_from_json_rejects_garbage_and_wrong_version():
    with pytest.raises(ProtocolError):
        ServerSnapshot.from_json("{}")
    document = sample_snapshot().to_json().replace(
        f'"version": {SNAPSHOT_VERSION}', '"version": 99'
    )
    with pytest.raises(ProtocolError, match="version"):
        ServerSnapshot.from_json(document)


def test_memory_store_round_trip_latest_wins():
    store = MemorySnapshotStore()
    assert store.load() is None
    first = sample_snapshot()
    store.save(first)
    second = ServerSnapshot(
        server_id=1, members=(0, 1), dead=(), tag=Tag(8, 0), value=b"newer",
        ts_seen=8, watermark=(), completed_ops=(), pending=(),
    )
    store.save(second)
    assert store.load() == second
    assert store.saves == 2


def test_file_store_round_trip_and_atomic_overwrite(tmp_path):
    path = str(tmp_path / "s1.snapshot")
    store = FileSnapshotStore(path)
    assert store.load() is None
    store.save(sample_snapshot())
    assert store.load() == sample_snapshot()
    # A second save atomically replaces the first (no .tmp residue).
    newer = ServerSnapshot(
        server_id=1, members=(0, 1, 2, 3), dead=(), tag=Tag(9, 1), value=b"v2",
        ts_seen=9, watermark=(), completed_ops=(), pending=(),
    )
    store.save(newer)
    assert store.load() == newer
    assert not (tmp_path / "s1.snapshot.tmp").exists()
    # A fresh store handle over the same path sees the persisted state.
    assert FileSnapshotStore(path).load() == newer


def test_file_store_fsync_also_syncs_directory(tmp_path, monkeypatch):
    """With ``fsync=True`` the rename must be made durable too: the
    directory containing the snapshot gets its own fsync, or power loss
    after ``save`` returns could roll back to the previous snapshot."""
    import os
    import stat

    synced = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    store = FileSnapshotStore(str(tmp_path / "s1.snapshot"), fsync=True)
    store.save(sample_snapshot())
    assert True in synced, "parent directory was never fsynced"
    assert False in synced, "snapshot file itself was never fsynced"

    # Without fsync=True neither sync happens (rename atomicity only).
    synced.clear()
    FileSnapshotStore(str(tmp_path / "s2.snapshot")).save(sample_snapshot())
    assert synced == []


def test_file_store_load_discards_orphaned_tmp(tmp_path):
    """A ``.tmp`` left by a crash between write and rename is removed on
    the next load and never shadows or corrupts the real snapshot."""
    path = tmp_path / "s1.snapshot"
    store = FileSnapshotStore(str(path))
    store.save(sample_snapshot())
    orphan = tmp_path / "s1.snapshot.tmp"
    orphan.write_text("torn{{{garbage")
    assert store.load() == sample_snapshot()
    assert not orphan.exists()

    # An orphan with no real snapshot behind it: load reports "nothing
    # saved" and reclaims the directory entry.
    lone = FileSnapshotStore(str(tmp_path / "fresh.snapshot"))
    (tmp_path / "fresh.snapshot.tmp").write_text("torn")
    assert lone.load() is None
    assert not (tmp_path / "fresh.snapshot.tmp").exists()


# ----------------------------------------------------------------------
# Protocol snapshot/restore: write -> crash -> reload -> identical state.
# ----------------------------------------------------------------------


def build_server_with_state() -> tuple[ServerProtocol, MemorySnapshotStore]:
    store = MemorySnapshotStore()
    proto = ServerProtocol(1, RingView.initial(3), durable=store)
    # A committed write from another origin (forward, then commit).
    proto.on_ring_message(PreWrite(Tag(3, 0), b"committed-upstream", OpId(50, 0)))
    while proto.has_ring_work:
        if proto.next_ring_message() is None:
            break
    proto.on_ring_message(Commit((Tag(3, 0),)))
    # An in-flight local initiation (stays pending).
    proto.on_client_message(60, ClientWrite(OpId(60, 0), b"still-pending"))
    while proto.has_ring_work:
        if proto.next_ring_message() is None:
            break
    return proto, store


def test_write_crash_reload_restores_identical_protocol_state():
    proto, store = build_server_with_state()
    snapshot = store.load()
    assert snapshot is not None, "commit points must have persisted"
    # "Crash": the protocol object is discarded; only the store survives.
    restored = ServerProtocol.restore(1, (0, 1, 2), store.load(), durable=store)
    assert restored.value == proto.value
    assert restored.tag == proto.tag
    assert restored.ts_seen == proto.ts_seen
    assert restored.watermark == proto.watermark
    assert restored.completed_ops == proto.completed_ops
    assert restored.pending == proto.pending
    assert restored.op_index == proto.op_index
    assert restored._reconfig_counter == proto._reconfig_counter
    # A restored (non-alone) server is rejoining: paused, deferring
    # reads, announcing itself.
    assert restored.rejoining and restored.paused


def test_snapshot_is_write_ahead_of_replies():
    """The snapshot covering a commit exists before the ack is handed to
    the runtime, so an acknowledged write can never be forgotten."""
    store = MemorySnapshotStore()
    proto = ServerProtocol(0, RingView(members=(0,)), durable=store)
    replies = proto.on_client_message(9, ClientWrite(OpId(9, 0), b"acked"))
    assert replies, "the single-survivor fast path acks immediately"
    snapshot = store.load()
    assert snapshot is not None
    assert snapshot.value == b"acked"
    assert dict(snapshot.completed_ops).get(9) == 0


def test_restore_without_snapshot_starts_fresh_but_rejoining():
    restored = ServerProtocol.restore(2, (0, 1, 2), None)
    assert restored.tag == Tag.ZERO
    assert restored.rejoining and restored.paused


def test_restore_alone_resolves_recovered_pending_writes():
    store = MemorySnapshotStore()
    snapshot = ServerSnapshot(
        server_id=0,
        members=(0, 1, 2),
        dead=(),
        tag=Tag(2, 1),
        value=b"old",
        ts_seen=4,
        watermark=((1, 2),),
        completed_ops=(),
        pending=(PendingEntry(Tag(4, 2), b"orphaned", OpId(70, 0)),),
    )
    restored = ServerProtocol.restore(
        0, (0, 1, 2), snapshot, durable=store, alone=True
    )
    # The sole survivor resolves the orphaned pre-write locally: it is
    # installed (its tag outbids the committed one) and not pending.
    assert not restored.rejoining and not restored.paused
    assert restored.alone
    assert restored.pending == {}
    assert restored.value == b"orphaned"
    assert dict(restored.completed_ops).get(70) == 0
