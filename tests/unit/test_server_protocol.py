"""Unit tests for the server state machine (failure-free paths).

These drive ``ServerProtocol`` instances directly through the
:class:`tests.conftest.RingHarness` lossless in-memory ring, asserting
the exact message flows of the paper's pseudocode.
"""

from tests.helpers import RingHarness, make_servers

from repro.core.messages import (
    ClientRead,
    ClientWrite,
    Commit,
    OpId,
    PreWrite,
    ReadAck,
    WriteAck,
)
from repro.core.tags import Tag


def test_initial_state():
    (server,) = make_servers(1)
    assert server.value == b""
    assert server.tag == Tag.ZERO
    assert not server.pending
    assert not server.has_ring_work


def test_write_completes_after_two_ring_traversals():
    h = RingHarness(3)
    op = h.client_write(0, b"v1")
    # Pre-write circle: 3 pumps (s0->s1, s1->s2, s2->s0).
    h.pump(3)
    assert h.acks_for(op) == [], "no ack before the commit returns"
    assert h.server(0).value == b"v1", "origin installs at pre-write return"
    # Commit circle + the extra staleness hop.
    h.pump_until_quiet()
    acks = h.acks_for(op)
    assert len(acks) == 1 and isinstance(acks[0].message, WriteAck)
    for server in h.servers:
        assert server.value == b"v1"
        assert not server.pending


def test_read_is_local_and_immediate_without_contention():
    h = RingHarness(3)
    op = h.client_write(1, b"v1")
    h.pump_until_quiet()
    h.replies.clear()
    read_op = h.client_read(2)
    acks = h.acks_for(read_op)
    assert len(acks) == 1
    assert isinstance(acks[0].message, ReadAck)
    assert acks[0].message.value == b"v1"
    assert h.server(2).stats_reads_served == 1
    assert h.server(2).stats_reads_waited == 0


def test_read_waits_during_pre_write_window():
    h = RingHarness(3)
    h.client_write(0, b"new")
    # Three pumps: s0 initiates, s1 forwards, s2 forwards.  A pre-write
    # enters a server's pending set only when *forwarded* (line 71), so
    # s2 now blocks reads on it.
    h.pump(3)
    assert Tag(1, 0) in h.server(2).pending
    read_op = h.client_read(2)
    assert h.acks_for(read_op) == [], "read must wait for the pending write"
    assert h.server(2).stats_reads_waited == 1
    h.pump_until_quiet()
    acks = h.acks_for(read_op)
    assert len(acks) == 1 and acks[0].message.value == b"new"


def test_read_still_immediate_while_pre_write_only_queued():
    """Line 71's forward-time pending keeps reads immediate as long as
    possible: a queued-but-unforwarded pre-write does not block reads."""
    h = RingHarness(3)
    h.client_write(0, b"new")
    h.pump(1)  # s1 has the pre-write queued, not yet forwarded
    read_op = h.client_read(1)
    acks = h.acks_for(read_op)
    assert len(acks) == 1 and acks[0].message.value == b""


def test_tags_increase_monotonically_per_origin():
    h = RingHarness(3)
    h.client_write(0, b"a")
    h.pump_until_quiet()
    h.client_write(0, b"b")
    h.pump_until_quiet()
    assert h.server(1).tag == Tag(2, 0)
    assert h.server(1).value == b"b"


def test_concurrent_writes_ordered_by_tag():
    h = RingHarness(3)
    op_a = h.client_write(0, b"from-s0", client=1)
    op_b = h.client_write(1, b"from-s1", client=2)
    h.pump_until_quiet()
    assert len(h.acks_for(op_a)) == 1
    assert len(h.acks_for(op_b)) == 1
    # Same ts 1 at both origins: server id 1 wins the tie-break.
    winner = max(Tag(1, 0), Tag(1, 1))
    values = {s.value for s in h.servers}
    assert values == {b"from-s1"}, values
    assert all(s.tag == winner for s in h.servers)


def test_duplicate_pre_write_dropped():
    h = RingHarness(3)
    s1 = h.server(1)
    pw = PreWrite(Tag(1, 0), b"v", OpId(9, 0))
    s1.on_ring_message(pw)
    before = len(s1.fair)
    s1.on_ring_message(pw)
    assert len(s1.fair) == before, "second copy must not enqueue"
    assert s1.stats_duplicates_dropped == 1


def test_stale_commit_dropped():
    h = RingHarness(3)
    h.client_write(0, b"a")
    h.pump_until_quiet()
    s1 = h.server(1)
    processed = s1.stats_commits_processed
    s1.on_ring_message(Commit((Tag(1, 0),)))  # already committed
    assert s1.stats_commits_processed == processed
    assert not s1.commit_queue or s1.commit_queue[-1] != Tag(1, 0)


def test_commit_travels_one_circle_plus_one_hop():
    h = RingHarness(3)
    h.client_write(0, b"v")
    h.pump_until_quiet()
    # Every server processed the commit exactly once.
    assert all(s.stats_commits_processed == 1 for s in h.servers)
    assert h.server(1).stats_duplicates_dropped >= 1, "the extra hop is dropped"


def test_client_write_dedup_by_completed_ops():
    h = RingHarness(3)
    op = OpId(42, 7)
    h.replies.extend(
        h.server(0).on_client_message(42, ClientWrite(op, b"v"))
    )
    h.pump_until_quiet()
    assert len(h.acks_for(op)) == 1
    # Retry of the same op at another server: immediate ack, no new write.
    initiated_before = sum(s.stats_writes_initiated for s in h.servers)
    h.replies.extend(
        h.server(2).on_client_message(42, ClientWrite(op, b"v"))
    )
    h.pump_until_quiet()
    assert len(h.acks_for(op)) == 2
    assert sum(s.stats_writes_initiated for s in h.servers) == initiated_before


def test_client_write_dedup_joins_inflight_write():
    h = RingHarness(3)
    op = OpId(42, 7)
    h.server(0).on_client_message(42, ClientWrite(op, b"v"))
    h.pump(2)  # pre-write is travelling; op is in-flight at s1/s2
    h.replies.extend(h.server(2).on_client_message(42, ClientWrite(op, b"v")))
    h.pump_until_quiet()
    # Both the origin and the retried server ack the same op once each.
    assert len(h.acks_for(op)) == 2
    assert sum(s.stats_writes_initiated for s in h.servers) == 1


def test_single_server_ring_commits_locally():
    h = RingHarness(1)
    op = h.client_write(0, b"solo")
    acks = h.acks_for(op)
    assert len(acks) == 1 and isinstance(acks[0].message, WriteAck)
    read_op = h.client_read(0)
    assert h.acks_for(read_op)[0].message.value == b"solo"
    assert not h.server(0).has_ring_work


def test_writes_from_all_servers_complete_under_load():
    h = RingHarness(4)
    ops = []
    for round_no in range(5):
        for server_id in range(4):
            ops.append(h.client_write(server_id, b"v%d-%d" % (server_id, round_no),
                                      client=100 + server_id))
    h.pump_until_quiet()
    for op in ops:
        assert len(h.acks_for(op)) == 1, f"write {op} not acked exactly once"
    # All servers converged on the same final value.
    assert len({s.value for s in h.servers}) == 1
    assert all(not s.pending for s in h.servers)


def test_read_reply_carries_tag():
    h = RingHarness(2)
    h.client_write(0, b"x")
    h.pump_until_quiet()
    read_op = h.client_read(1)
    ack = h.acks_for(read_op)[0].message
    assert ack.tag == Tag(1, 0)


def test_duplicate_write_retry_is_acked_with_the_committed_tag():
    """A retry of an already-committed write (its original ack was lost)
    is deduplicated — and the dedup ack must carry the tag the write
    committed under.  An untagged ack would complete the client's
    operation with no tag evidence, punching a hole in the 100% tag
    coverage the benchmark-scale chaos gate requires."""
    h = RingHarness(3)
    op = h.client_write(0, b"v1")
    h.pump_until_quiet()
    (original,) = h.acks_for(op)
    assert original.message.tag is not None

    # The retry lands at the origin server (the common lost-ack path).
    h.replies.extend(h.server(0).on_client_message(900, ClientWrite(op, b"v1")))
    retry_acks = h.acks_for(op)[1:]
    assert len(retry_acks) == 1
    assert retry_acks[0].message.tag == original.message.tag

    # A retry at a *different* server — which learned of the commit by
    # processing it — also answers with the committed tag.
    h.replies.extend(h.server(2).on_client_message(900, ClientWrite(op, b"v1")))
    far_acks = h.acks_for(op)[2:]
    assert len(far_acks) == 1
    assert far_acks[0].message.tag == original.message.tag


def test_completed_tag_tracks_only_the_latest_op_per_client():
    h = RingHarness(2)
    first = h.client_write(0, b"one", client=77)
    h.pump_until_quiet()
    second = h.client_write(0, b"two", client=77)
    h.pump_until_quiet()
    server = h.server(0)
    tags = [ack.message.tag for ack in h.acks_for(second)]
    assert server._completed_tag(second) == tags[0]
    assert server._completed_tag(first) is None, (
        "an ancient seq must not be answered with the newer op's tag"
    )
