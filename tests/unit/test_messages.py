"""Unit tests for message definitions and wire-size accounting."""

import pytest

from repro.core.messages import (
    ClientRead,
    ClientWrite,
    Commit,
    FragmentFetch,
    FragmentReply,
    FragmentStore,
    OpId,
    PendingEntry,
    PreWrite,
    ReadAck,
    ReconfigCommit,
    ReconfigToken,
    RejoinRequest,
    StateSync,
    WriteAck,
    payload_size,
)
from repro.core.tags import Tag
from repro.transport.codec import encode_message

OP = OpId(7, 3)
TAG = Tag(5, 2)


def _all_messages():
    return [
        ClientWrite(OP, b"x" * 100),
        WriteAck(OP, TAG),
        WriteAck(OP, None),
        ClientRead(OP),
        ReadAck(OP, b"y" * 50, TAG),
        PreWrite(TAG, b"v" * 200, OP),
        PreWrite(TAG, b"v" * 200, OP, (Tag(1, 0), Tag(2, 1))),
        Commit((Tag(1, 0),)),
        Commit(()),
        StateSync(TAG, b"z" * 10, (Tag(4, 4),)),
        ReconfigToken(1, 1, 0, (2,), TAG, b"w" * 30,
                      (PendingEntry(Tag(6, 1), b"p" * 20, OP),), ((7, 3),)),
        ReconfigCommit(1, 1, 0, (2,), TAG, b"w" * 30, (), ((7, 3), (8, 0))),
        ReconfigToken(2, 1, 0, (), TAG, b"", (), (), revived=(3,)),
        ReconfigCommit(2, 1, 0, (2,), TAG, b"", (), (), revived=(1, 3)),
        RejoinRequest(3),
        RejoinRequest(3, generation=4),
        FragmentStore(TAG, OP, 1, b"f" * 64, epoch=2),
        FragmentFetch(9, TAG, 2, epoch=2),
        FragmentReply(9, TAG, 3, b"f" * 64, epoch=2),
        FragmentReply(9, TAG, -1, b"", epoch=2),
    ]


@pytest.mark.parametrize("message", _all_messages(), ids=lambda m: type(m).__name__)
def test_payload_size_matches_codec_encoding(message):
    """The simulator charges exactly the bytes the real codec produces."""
    assert payload_size(message) == len(encode_message(message))


def test_payload_grows_with_value():
    small = payload_size(ClientWrite(OP, b"a"))
    large = payload_size(ClientWrite(OP, b"a" * 1000))
    assert large - small == 999


def test_commit_cost_is_per_tag():
    one = payload_size(Commit((Tag(1, 0),)))
    three = payload_size(Commit((Tag(1, 0), Tag(2, 0), Tag(3, 0))))
    assert three - one == 24  # 12 bytes per tag


def test_prewrite_origin_property():
    assert PreWrite(Tag(9, 4), b"", OP).origin == 4


def test_unknown_message_type_rejected():
    with pytest.raises(TypeError):
        payload_size(object())


def test_messages_are_immutable():
    message = ClientWrite(OP, b"v")
    with pytest.raises(AttributeError):
        message.value = b"other"
