"""Unit tests for the binary codec and stream framing."""

import pytest

from repro.core.messages import (
    ClientRead,
    ClientWrite,
    Commit,
    OpId,
    PendingEntry,
    PreWrite,
    ReadAck,
    ReconfigCommit,
    ReconfigToken,
    RejoinRequest,
    StateSync,
    WriteAck,
)
from repro.core.tags import Tag
from repro.errors import ProtocolError
from repro.transport.codec import decode_message, encode_message
from repro.transport.framing import FrameDecoder, frame

OP = OpId(11, 5)


@pytest.mark.parametrize(
    "message",
    [
        ClientWrite(OP, b"payload"),
        ClientWrite(OP, b""),
        WriteAck(OP, Tag(3, 1)),
        WriteAck(OP, None),
        ClientRead(OP),
        ReadAck(OP, b"\x00\xff" * 8, Tag(9, 0)),
        PreWrite(Tag(4, 2), b"value", OP, (Tag(1, 0), Tag(2, 3))),
        Commit((Tag(1, 1), Tag(2, 2))),
        Commit(()),
        StateSync(Tag(7, 0), b"state", (Tag(6, 1),)),
        ReconfigToken(5, 2, 1, (0, 3), Tag(8, 1), b"v",
                      (PendingEntry(Tag(9, 2), b"pv", OP),), ((11, 5), (12, 0))),
        ReconfigCommit(5, 2, 1, (0,), Tag(8, 1), b"", (), ()),
        ReconfigToken(6, 1, 0, (3,), Tag(9, 0), b"rv",
                      (), ((11, 5),), revived=(2,)),
        ReconfigCommit(6, 1, 0, (), Tag(9, 0), b"rv", (), (), revived=(1, 2)),
        ReconfigToken(7, 3, 2, (1,), Tag(10, 2), b"t",
                      (), ((11, 5), (12, 2)),
                      completed_tags=((11, Tag(9, 0)), (12, Tag(10, 2)))),
        ReconfigCommit(7, 3, 2, (1,), Tag(10, 2), b"t", (), ((11, 5),),
                       completed_tags=((11, Tag(9, 0)),)),
        RejoinRequest(2),
        RejoinRequest(3, generation=7),
    ],
    ids=lambda m: type(m).__name__,
)
def test_roundtrip(message):
    assert decode_message(encode_message(message)) == message


def test_decode_rejects_short_input():
    with pytest.raises(ProtocolError):
        decode_message(b"\x01\x02")


def test_decode_rejects_unknown_type():
    data = bytearray(encode_message(ClientRead(OP)))
    data[0] = 250
    with pytest.raises(ProtocolError):
        decode_message(bytes(data))


def test_decode_rejects_truncated_body():
    data = encode_message(ClientWrite(OP, b"hello"))
    with pytest.raises(ProtocolError):
        decode_message(data[:-2])


def test_encode_rejects_foreign_objects():
    with pytest.raises(ProtocolError):
        encode_message("not a message")


def test_frame_roundtrip_in_chunks():
    messages = [ClientRead(OP), ClientWrite(OP, b"x" * 100), Commit((Tag(1, 1),))]
    stream = b"".join(frame(encode_message(m)) for m in messages)
    decoder = FrameDecoder()
    got = []
    # Feed byte-by-byte to exercise partial-frame buffering.
    for i in range(0, len(stream), 7):
        for payload in decoder.feed(stream[i : i + 7]):
            got.append(decode_message(payload))
    assert got == messages
    assert decoder.pending_bytes == 0


def test_frame_decoder_rejects_absurd_length():
    decoder = FrameDecoder()
    with pytest.raises(ProtocolError):
        decoder.feed(b"\xff\xff\xff\xff")
