"""Unit tests for the binary codec and stream framing."""

import struct

import pytest

from repro.core.messages import (
    ClientRead,
    ClientWrite,
    Commit,
    FragmentFetch,
    FragmentReply,
    FragmentStore,
    Heartbeat,
    LeaseGrant,
    LeaseRevoke,
    OpId,
    PendingEntry,
    PreWrite,
    ReadAck,
    ReadFence,
    ReconfigCommit,
    ReconfigToken,
    RejoinRequest,
    StaleEpochNotice,
    StateSync,
    WriteAck,
)
from repro.core.tags import Tag
from repro.errors import ProtocolError
from repro.transport.codec import decode_message, encode_message
from repro.transport.framing import FrameDecoder, frame

OP = OpId(11, 5)


@pytest.mark.parametrize(
    "message",
    [
        ClientWrite(OP, b"payload"),
        ClientWrite(OP, b""),
        WriteAck(OP, Tag(3, 1)),
        WriteAck(OP, None),
        ClientRead(OP),
        ReadAck(OP, b"\x00\xff" * 8, Tag(9, 0)),
        PreWrite(Tag(4, 2), b"value", OP, (Tag(1, 0), Tag(2, 3))),
        Commit((Tag(1, 1), Tag(2, 2))),
        Commit(()),
        StateSync(Tag(7, 0), b"state", (Tag(6, 1),)),
        ReconfigToken(5, 2, 1, (0, 3), Tag(8, 1), b"v",
                      (PendingEntry(Tag(9, 2), b"pv", OP),), ((11, 5), (12, 0))),
        ReconfigCommit(5, 2, 1, (0,), Tag(8, 1), b"", (), ()),
        ReconfigToken(6, 1, 0, (3,), Tag(9, 0), b"rv",
                      (), ((11, 5),), revived=(2,)),
        ReconfigCommit(6, 1, 0, (), Tag(9, 0), b"rv", (), (), revived=(1, 2)),
        ReconfigToken(7, 3, 2, (1,), Tag(10, 2), b"t",
                      (), ((11, 5), (12, 2)),
                      completed_tags=((11, Tag(9, 0)), (12, Tag(10, 2)))),
        ReconfigCommit(7, 3, 2, (1,), Tag(10, 2), b"t", (), ((11, 5),),
                       completed_tags=((11, Tag(9, 0)),)),
        RejoinRequest(2),
        RejoinRequest(3, generation=7),
        FragmentStore(Tag(5, 1), OP, 2, b"\x01\x02frag", epoch=3),
        FragmentStore(Tag(5, 1), OP, 0, b"", epoch=0),
        FragmentFetch(17, Tag(5, 1), 3, epoch=2),
        FragmentReply(17, Tag(5, 1), 1, b"peer-frag", epoch=2),
        FragmentReply(18, Tag(5, 1), -1, b"", epoch=2),
    ],
    ids=lambda m: type(m).__name__,
)
def test_roundtrip(message):
    assert decode_message(encode_message(message)) == message


def test_decode_rejects_short_input():
    with pytest.raises(ProtocolError):
        decode_message(b"\x01\x02")


def test_decode_rejects_unknown_type():
    data = bytearray(encode_message(ClientRead(OP)))
    data[0] = 250
    with pytest.raises(ProtocolError):
        decode_message(bytes(data))


def test_decode_rejects_truncated_body():
    data = encode_message(ClientWrite(OP, b"hello"))
    with pytest.raises(ProtocolError):
        decode_message(data[:-2])


def test_encode_rejects_foreign_objects():
    with pytest.raises(ProtocolError):
        encode_message("not a message")


def test_frame_roundtrip_in_chunks():
    messages = [ClientRead(OP), ClientWrite(OP, b"x" * 100), Commit((Tag(1, 1),))]
    stream = b"".join(frame(encode_message(m)) for m in messages)
    decoder = FrameDecoder()
    got = []
    # Feed byte-by-byte to exercise partial-frame buffering.
    for i in range(0, len(stream), 7):
        for payload in decoder.feed(stream[i : i + 7]):
            got.append(decode_message(payload))
    assert got == messages
    assert decoder.pending_bytes == 0


def test_frame_decoder_rejects_absurd_length():
    decoder = FrameDecoder()
    with pytest.raises(ProtocolError):
        decoder.feed(b"\xff\xff\xff\xff")


# ----------------------------------------------------------------------
# Truncation hardening: no decoder may yield silently-short fields.
# ----------------------------------------------------------------------

#: One instance of every encodable message type, with every optional
#: section populated so truncation sweeps cross every field boundary.
TRUNCATION_SAMPLES = [
    ClientWrite(OP, b"payload-bytes"),
    WriteAck(OP, Tag(3, 1)),
    ClientRead(OP, session=Tag(2, 2)),
    ReadAck(OP, b"read-value", Tag(9, 0)),
    PreWrite(Tag(4, 2), b"value", OP, (Tag(1, 0), Tag(2, 3)), epoch=5),
    Commit((Tag(1, 1), Tag(2, 2)), epoch=4),
    StateSync(Tag(7, 0), b"state", (Tag(6, 1),), epoch=2),
    ReconfigToken(5, 2, 1, (0, 3), Tag(8, 1), b"merged-value",
                  (PendingEntry(Tag(9, 2), b"pending-value", OP),),
                  ((11, 5), (12, 0)), revived=(2,),
                  completed_tags=((11, Tag(9, 0)),)),
    ReconfigCommit(6, 3, 0, (1,), Tag(9, 0), b"cv",
                   (PendingEntry(Tag(10, 1), b"pv", OP),), ((11, 5),),
                   completed_tags=((11, Tag(9, 0)),)),
    RejoinRequest(3, generation=7, epoch=2),
    StaleEpochNotice(4, 1),
    ReadFence(31, 2, epoch=4),
    Heartbeat(3),
    LeaseGrant(1, epoch=2, sent_at=0.125),
    LeaseRevoke(1, epoch=2),
    FragmentStore(Tag(5, 1), OP, 2, b"fragment-bytes", epoch=3),
    FragmentFetch(17, Tag(5, 1), 3, epoch=2),
    FragmentReply(17, Tag(5, 1), 1, b"peer-fragment", epoch=2),
]


def _truncated_frame(encoded: bytes, cut: int) -> bytes:
    """The first ``cut`` body bytes under a consistent (rewritten) header,
    so the failure exercised is a decoder over-read, not the outer
    header/body length mismatch."""
    body = encoded[8:cut + 8]
    return struct.pack(">B3xI", encoded[0], len(body)) + body


@pytest.mark.parametrize("message", TRUNCATION_SAMPLES,
                         ids=lambda m: type(m).__name__)
def test_truncated_encodings_never_yield_short_fields(message):
    """Every truncation of every message type either raises
    ``ProtocolError`` or decodes to a *genuinely* shorter valid message
    (a trailing free-length value field — re-encoding must reproduce the
    truncated frame exactly).  Pre-hardening, truncated reconfiguration
    bodies decoded into silently-short values instead."""
    encoded = encode_message(message)
    body_len = len(encoded) - 8
    for cut in range(body_len):
        frame = _truncated_frame(encoded, cut)
        try:
            decoded = decode_message(frame)
        except ProtocolError:
            continue
        assert type(decoded) is type(message)
        assert encode_message(decoded) == frame, (
            f"{type(message).__name__} truncated to {cut}/{body_len} body "
            f"bytes decoded to a lossy {decoded!r}"
        )


@pytest.mark.parametrize(
    "message",
    [m for m in TRUNCATION_SAMPLES
     if isinstance(m, (ReconfigToken, ReconfigCommit, FragmentFetch))],
    ids=lambda m: type(m).__name__,
)
def test_fully_length_prefixed_types_reject_every_truncation(message):
    """Types without a trailing free-length field (every byte is covered
    by a count or length prefix) must reject *all* truncations."""
    encoded = encode_message(message)
    for cut in range(len(encoded) - 8):
        with pytest.raises(ProtocolError):
            decode_message(_truncated_frame(encoded, cut))
