"""Unit tests for the deterministic event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventScheduler


def test_events_fire_in_time_order():
    sched = EventScheduler()
    fired = []
    sched.schedule(3.0, fired.append, "c")
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(2.0, fired.append, "b")
    sched.run()
    assert fired == ["a", "b", "c"]
    assert sched.now == 3.0


def test_ties_break_by_schedule_order():
    sched = EventScheduler()
    fired = []
    for name in "abc":
        sched.schedule(1.0, fired.append, name)
    sched.run()
    assert fired == ["a", "b", "c"]


def test_cancel_prevents_firing():
    sched = EventScheduler()
    fired = []
    handle = sched.schedule(1.0, fired.append, "x")
    sched.schedule(2.0, fired.append, "y")
    handle.cancel()
    handle.cancel()  # idempotent
    sched.run()
    assert fired == ["y"]


def test_events_scheduled_during_events():
    sched = EventScheduler()
    fired = []

    def cascade():
        fired.append("outer")
        sched.schedule(1.0, fired.append, "inner")

    sched.schedule(1.0, cascade)
    sched.run()
    assert fired == ["outer", "inner"]
    assert sched.now == 2.0


def test_run_until_stops_and_advances_clock():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(5.0, fired.append, "b")
    sched.run(until=3.0)
    assert fired == ["a"]
    assert sched.now == 3.0
    sched.run()
    assert fired == ["a", "b"]


def test_cannot_schedule_in_the_past():
    sched = EventScheduler()
    sched.schedule(1.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sched.schedule(-1.0, lambda: None)


def test_step_returns_false_when_idle():
    sched = EventScheduler()
    assert sched.step() is False
    sched.schedule(1.0, lambda: None)
    assert sched.step() is True
    assert sched.step() is False


def test_run_until_idle_guards_against_runaway():
    sched = EventScheduler()

    def forever():
        sched.schedule(1.0, forever)

    sched.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sched.run_until_idle(max_events=100)


def test_events_fired_counter():
    sched = EventScheduler()
    for _ in range(5):
        sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_fired == 5
