"""Unit tests for the three atomicity checkers.

Each canonical history is checked against both value-based checkers
(which must agree) and, where tags exist, the tag checker.
"""

import pytest

from repro.analysis.history import History, Operation
from repro.analysis.linearizability import (
    check_register_history,
    check_register_history_slow,
    check_tagged_history,
)
from repro.core.tags import Tag
from repro.errors import HistoryError


def both(history, initial=b""):
    fast, _ = check_register_history(history, initial)
    slow, _ = check_register_history_slow(history, initial)
    assert fast == slow, "fast and slow checkers must agree"
    return fast


def test_empty_history_is_linearizable():
    assert both(History.of([]))


def test_sequential_write_then_read():
    assert both(History.of([
        Operation(1, "write", b"a", 0, 1),
        Operation(2, "read", b"a", 2, 3),
    ]))


def test_read_of_initial_value_before_write():
    assert both(History.of([
        Operation(1, "read", b"", 0, 1),
        Operation(2, "write", b"a", 2, 3),
    ]))


def test_read_of_initial_after_write_completed_is_violation():
    assert not both(History.of([
        Operation(1, "write", b"a", 0, 1),
        Operation(2, "read", b"", 2, 3),
    ]))


def test_read_inversion_detected():
    """The paper's motivating anomaly: new value then old value."""
    assert not both(History.of([
        Operation(1, "write", b"new", 0, 10),
        Operation(2, "read", b"new", 1, 2),
        Operation(3, "read", b"", 3, 4),
    ]))


def test_concurrent_reads_may_split_before_after():
    assert both(History.of([
        Operation(1, "write", b"new", 0, 10),
        Operation(2, "read", b"", 1, 2),
        Operation(3, "read", b"new", 3, 4),
    ]))


def test_value_from_nowhere_rejected():
    ok, reason = check_register_history(History.of([
        Operation(1, "read", b"ghost", 0, 1),
    ]))
    assert not ok and "never written" in reason


def test_read_from_the_future_rejected():
    assert not both(History.of([
        Operation(1, "read", b"a", 0, 1),
        Operation(2, "write", b"a", 2, 3),
    ]))


def test_open_write_may_or_may_not_take_effect():
    # Not read by anyone: fine either way.
    assert both(History.of([
        Operation(1, "write", b"a", 0, None),
        Operation(2, "read", b"", 1, 2),
    ]))
    # Read by someone: it must have taken effect before that read...
    assert both(History.of([
        Operation(1, "write", b"a", 0, None),
        Operation(2, "read", b"a", 1, 2),
    ]))
    # ...but then a later read of the initial value is an inversion.
    assert not both(History.of([
        Operation(1, "write", b"a", 0, None),
        Operation(2, "read", b"a", 1, 2),
        Operation(3, "read", b"", 3, 4),
    ]))


def test_two_writers_interleaved_reads():
    assert both(History.of([
        Operation(1, "write", b"a", 0, 5),
        Operation(2, "write", b"b", 1, 2),
        Operation(3, "read", b"b", 3, 4),
        Operation(4, "read", b"a", 6, 7),
    ]))


def test_sandwich_anomaly_detected():
    """A write taking effect twice around another write (the retry
    anomaly discussed in DESIGN.md) is not linearizable."""
    assert not both(History.of([
        Operation(0, "write", b"v", 0.0, 9.0),
        Operation(1, "write", b"w", 2.0, 3.0),
        Operation(2, "read", b"v", 1.0, 1.5),
        Operation(3, "read", b"w", 3.5, 4.0),
        Operation(4, "read", b"v", 5.0, 6.0),
    ]))


def test_duplicate_written_values_rejected_by_contract():
    with pytest.raises(HistoryError):
        check_register_history(History.of([
            Operation(1, "write", b"a", 0, 1),
            Operation(2, "write", b"a", 2, 3),
        ]))


def test_slow_checker_guards_history_size():
    ops = [Operation(i, "write", bytes([i]), i, i + 1) for i in range(30)]
    with pytest.raises(HistoryError):
        check_register_history_slow(History.of(ops))


# ----------------------------------------------------------------------
# Tag-based checker
# ----------------------------------------------------------------------


def test_tagged_monotone_history_ok():
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0)),
        Operation(2, "read", b"a", 2, 3, tag=Tag(1, 0)),
        Operation(3, "write", b"b", 4, 5, tag=Tag(2, 1)),
        Operation(4, "read", b"b", 6, 7, tag=Tag(2, 1)),
    ])
    ok, _ = check_tagged_history(history)
    assert ok


def test_tagged_inversion_detected():
    history = History.of([
        Operation(1, "read", b"b", 0, 1, tag=Tag(2, 0)),
        Operation(2, "read", b"a", 2, 3, tag=Tag(1, 0)),
    ])
    ok, reason = check_tagged_history(history)
    assert not ok and "observed" in reason


def test_tagged_value_mismatch_detected():
    history = History.of([
        Operation(1, "read", b"x", 0, 1, tag=Tag(1, 0)),
        Operation(2, "read", b"y", 2, 3, tag=Tag(1, 0)),
    ])
    ok, reason = check_tagged_history(history)
    assert not ok


def test_tagged_double_write_same_tag_detected():
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0)),
        Operation(2, "write", b"b", 2, 3, tag=Tag(1, 0)),
    ])
    ok, reason = check_tagged_history(history)
    assert not ok and "two writes" in reason


def test_tagged_write_observed_before_it_started():
    history = History.of([
        Operation(1, "read", b"a", 0, 1, tag=Tag(1, 0)),
        Operation(2, "write", b"a", 2, 3, tag=Tag(1, 0)),
    ])
    ok, reason = check_tagged_history(history)
    assert not ok


def test_tagged_checker_reports_coverage_and_skips_untagged_by_default():
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0)),
        Operation(2, "read", b"a", 2, 3),  # completed, never tagged
    ])
    ok, reason = check_tagged_history(history)
    assert ok, "untagged ops are skipped (and the check is vacuous for them)"
    assert "1/2" in reason


def test_tagged_checker_full_coverage_mode_rejects_untagged_completions():
    """The vacuous-pass hazard: a runtime that forgets to record tags
    must not check green.  require_full_coverage fails any completed
    untagged operation and names the coverage."""
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0)),
        Operation(2, "read", b"a", 2, 3),
    ])
    ok, reason = check_tagged_history(history, require_full_coverage=True)
    assert not ok
    assert "coverage" in reason and "1/2" in reason


def test_tagged_checker_full_coverage_ignores_open_operations():
    """Open operations carry no response, so they owe no tag."""
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0)),
        Operation(2, "write", b"b", 2, None),  # open: client never heard back
    ])
    ok, reason = check_tagged_history(history, require_full_coverage=True)
    assert ok, reason
    assert "1/1" in reason


def test_tagged_checker_full_coverage_passes_and_reports_on_clean_history():
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0)),
        Operation(2, "read", b"a", 2, 3, tag=Tag(1, 0)),
    ])
    ok, reason = check_tagged_history(history, require_full_coverage=True)
    assert ok and "2/2" in reason
