"""Unit tests for the nb_msg fair forwarding scheduler (lines 53-75)."""

from repro.core.fairness import INITIATE_OWN, FairScheduler


def test_empty_queue_initiates_own_when_wanted():
    sched = FairScheduler(server_id=0)
    assert sched.choose(want_initiate=True) == INITIATE_OWN
    assert sched.choose(want_initiate=False) is None


def test_empty_queue_resets_counters():
    sched = FairScheduler(server_id=0)
    sched.enqueue(1, "m1")
    sched.choose(want_initiate=False)  # forwards m1; counters nb[1]=1
    assert sched.nb_msg.get(1) == 1
    assert sched.choose(want_initiate=False) is None  # queue now empty -> reset
    assert sched.nb_msg == {}


def test_min_counter_origin_served_first():
    sched = FairScheduler(server_id=0)
    sched.enqueue(1, "a1")
    sched.enqueue(1, "a2")
    sched.enqueue(2, "b1")
    first = sched.choose(want_initiate=False)
    assert first == (1, "a1")  # tie broken by lowest origin id
    second = sched.choose(want_initiate=False)
    assert second == (2, "b1")  # origin 2 now has the smaller counter
    third = sched.choose(want_initiate=False)
    assert third == (1, "a2")


def test_self_competes_via_own_counter():
    sched = FairScheduler(server_id=0)
    sched.enqueue(1, "a1")
    sched.enqueue(1, "a2")
    # Initiating counts against self (line 26).
    assert sched.choose(want_initiate=True) == INITIATE_OWN
    sched.note_initiated()
    # Now origin 1 (counter 0) wins over self (counter 1).
    assert sched.choose(want_initiate=True) == (1, "a1")
    # Counters equal -> lowest id wins; self is id 0.
    assert sched.choose(want_initiate=True) == INITIATE_OWN


def test_per_origin_fifo_preserved():
    sched = FairScheduler(server_id=0)
    for i in range(3):
        sched.enqueue(7, f"m{i}")
    got = [sched.choose(want_initiate=False)[1] for _ in range(3)]
    assert got == ["m0", "m1", "m2"]


def test_unfair_mode_always_prefers_self():
    sched = FairScheduler(server_id=0, fair=False)
    sched.enqueue(1, "a1")
    assert sched.choose(want_initiate=True) == INITIATE_OWN
    assert sched.choose(want_initiate=True) == INITIATE_OWN
    # Only when there is nothing of our own does forwarding happen.
    assert sched.choose(want_initiate=False) == (1, "a1")


def test_drain_returns_fifo_and_clears():
    sched = FairScheduler(server_id=0)
    sched.enqueue(1, "a1")
    sched.enqueue(2, "b1")
    sched.enqueue(1, "a2")
    drained = sched.drain()
    assert drained == [(1, "a1"), (2, "b1"), (1, "a2")]
    assert sched.empty
    assert sched.drain() == []


def test_len_and_origins_queued():
    sched = FairScheduler(server_id=0)
    assert len(sched) == 0
    sched.enqueue(3, "x")
    sched.enqueue(4, "y")
    assert len(sched) == 2
    assert sorted(sched.origins_queued()) == [3, 4]


def test_no_origin_starves_under_saturation():
    """Every origin with queued work gets served within n picks."""
    sched = FairScheduler(server_id=0)
    origins = [1, 2, 3, 4]
    for round_no in range(100):
        for origin in origins:
            sched.enqueue(origin, f"{origin}-{round_no}")
    served: dict[int, int] = {}
    for _ in range(400):
        origin, _item = sched.choose(want_initiate=False)
        served[origin] = served.get(origin, 0) + 1
    # Perfect fairness: equal share for all four origins.
    assert all(count == 100 for count in served.values()), served
