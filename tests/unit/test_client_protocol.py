"""Unit tests for the client state machine (issue, ack, retry)."""

import pytest

from repro.core.client import ClientProtocol
from repro.core.config import ProtocolConfig
from repro.core.messages import ClientRead, ClientWrite, ReadAck, WriteAck
from repro.core.tags import Tag
from repro.errors import ProtocolError
from repro.runtime.interface import CancelTimer, Complete, Fail, SendTo, SetTimer


def make_client(**overrides):
    config = ProtocolConfig(client_timeout=1.0, client_max_retries=2, **overrides)
    return ClientProtocol(50, servers=[0, 1, 2], config=config)


def test_write_issues_request_and_timer():
    client = make_client()
    op, effects = client.start_write(b"v")
    send, timer = effects
    assert isinstance(send, SendTo) and send.server == 0
    assert isinstance(send.message, ClientWrite) and send.message.value == b"v"
    assert isinstance(timer, SetTimer) and timer.delay == 1.0
    assert client.busy


def test_read_completes_on_ack():
    client = make_client()
    op, _effects = client.start_read()
    effects = client.on_reply(ReadAck(op, b"data", Tag(1, 0)))
    cancel, complete = effects
    assert isinstance(cancel, CancelTimer)
    assert isinstance(complete, Complete)
    assert complete.value == b"data" and complete.kind == "read"
    assert not client.busy


def test_write_completes_on_ack_with_tag():
    client = make_client()
    op, _ = client.start_write(b"v")
    effects = client.on_reply(WriteAck(op, Tag(4, 2)))
    assert any(isinstance(e, Complete) and e.tag == Tag(4, 2) for e in effects)


def test_one_operation_at_a_time():
    client = make_client()
    client.start_write(b"v")
    with pytest.raises(ProtocolError):
        client.start_read()


def test_timeout_retries_at_next_server():
    client = make_client()
    op, _ = client.start_write(b"v")
    effects = client.on_timeout(op.seq)
    send = next(e for e in effects if isinstance(e, SendTo))
    assert send.server == 1
    assert send.message.op == op, "retries reuse the op id for dedup"
    assert client.stats_retries == 1


def test_retries_walk_all_servers_round_robin():
    client = make_client()
    op, _ = client.start_write(b"v")
    servers = []
    for _ in range(2):
        effects = client.on_timeout(op.seq)
        servers.extend(e.server for e in effects if isinstance(e, SendTo))
    assert servers == [1, 2]


def test_retries_exhausted_fails_operation():
    client = make_client()
    op, _ = client.start_write(b"v")
    client.on_timeout(op.seq)
    client.on_timeout(op.seq)
    effects = client.on_timeout(op.seq)
    assert any(isinstance(e, Fail) and e.op == op for e in effects)
    assert not client.busy


def test_retries_exhausted_resets_full_op_state():
    """Regression: the exhausted path used to leave _kind and _retries
    stale and emitted no CancelTimer.  A late ack arriving after the
    Fail must be ignored, and the next operation must start with a
    fresh retry budget and the right kind."""
    client = make_client()
    op, _ = client.start_write(b"v")
    for _ in range(2):
        client.on_timeout(op.seq)
    effects = client.on_timeout(op.seq)
    kinds = [type(e) for e in effects]
    assert kinds == [CancelTimer, Fail], effects
    assert effects[0].timer_id == op.seq
    assert client._kind is None and client._retries == 0

    # A late ack for the failed write is stale, not a completion.
    assert client.on_reply(WriteAck(op, Tag(9, 1))) == []
    assert not client.busy

    # The next operation starts clean: full retry budget, correct kind.
    op2, effects = client.start_read()
    assert op2.seq == op.seq + 1
    assert client._kind == "read" and client._retries == 0
    ack = client.on_reply(ReadAck(op2, b"x", Tag(1, 0)))
    complete = next(e for e in ack if isinstance(e, Complete))
    assert complete.kind == "read"
    # And its retry budget was not eaten by the failed predecessor.
    client2 = make_client()
    op3, _ = client2.start_write(b"w")
    client2.on_timeout(op3.seq)
    client2.on_timeout(op3.seq)
    client2.on_timeout(op3.seq)  # exhausted (2 retries allowed)
    op4, _ = client2.start_write(b"w2")
    assert not any(
        isinstance(e, Fail) for e in client2.on_timeout(op4.seq)
    ), "the new op must get its own full retry budget"


def test_stale_replies_and_timers_ignored():
    client = make_client()
    op, _ = client.start_write(b"v")
    client.on_reply(WriteAck(op, Tag(1, 0)))
    assert client.on_reply(WriteAck(op, Tag(1, 0))) == []
    assert client.on_timeout(op.seq) == []


def test_duplicate_ack_after_retry_is_harmless():
    client = make_client()
    op, _ = client.start_write(b"v")
    client.on_timeout(op.seq)  # retried to server 1
    effects = client.on_reply(WriteAck(op, Tag(1, 0)))  # ack from either server
    assert any(isinstance(e, Complete) for e in effects)
    assert client.on_reply(WriteAck(op, Tag(1, 0))) == []


def test_op_ids_are_unique_and_increasing():
    client = make_client()
    op1, _ = client.start_write(b"a")
    client.on_reply(WriteAck(op1, Tag(1, 0)))
    op2, _ = client.start_read()
    assert op2.seq == op1.seq + 1
    assert op1.client == op2.client == 50


def test_needs_at_least_one_server():
    with pytest.raises(ProtocolError):
        ClientProtocol(1, servers=[])


def test_abandon_resets_op_state_and_reports_the_op():
    client = make_client()
    op, _ = client.start_write(b"v")
    client.on_timeout(op.seq)  # one retry consumed
    assert client.abandon() == op
    assert not client.busy
    # The handle is reusable and the new op starts from scratch: a full
    # retry budget and no phantom outstanding op.
    op2, effects = client.start_read()
    assert op2.seq == op.seq + 1
    assert any(isinstance(e, SendTo) for e in effects)
    assert not any(
        isinstance(e, Fail) for e in client.on_timeout(op2.seq)
    ), "the abandoned op's consumed retries must not leak into the next op"


def test_abandon_with_nothing_in_flight_is_a_noop():
    client = make_client()
    assert client.abandon() is None
    op, _ = client.start_write(b"v")
    client.on_reply(WriteAck(op, Tag(1, 0)))
    assert client.abandon() is None
