"""Unit tests for failure detectors."""

from repro.fd.heartbeat import HeartbeatTracker
from repro.fd.perfect import PerfectFailureDetector
from repro.sim.env import SimEnv


def test_perfect_fd_notifies_after_delay():
    env = SimEnv()
    fd = PerfectFailureDetector(env, detection_delay=0.005)
    seen = []
    fd.subscribe(seen.append)
    fd.report_crash(3)
    assert seen == [], "detection takes the configured delay"
    env.run_until_idle()
    assert seen == [3]
    assert env.now == 0.005
    assert fd.suspected() == {3}


def test_perfect_fd_reports_each_crash_once():
    env = SimEnv()
    fd = PerfectFailureDetector(env, detection_delay=0.001)
    seen = []
    fd.subscribe(seen.append)
    fd.report_crash(1)
    fd.report_crash(1)
    fd.report_crash(2)
    env.run_until_idle()
    assert sorted(seen) == [1, 2]


def test_perfect_fd_multiple_listeners():
    env = SimEnv()
    fd = PerfectFailureDetector(env, detection_delay=0.001)
    a, b = [], []
    fd.subscribe(a.append)
    fd.subscribe(b.append)
    fd.report_crash(0)
    env.run_until_idle()
    assert a == b == [0]


def test_heartbeat_tracker_suspects_after_timeout():
    tracker = HeartbeatTracker(peers=[1, 2], timeout=1.0, now=0.0)
    tracker.heard_from(1, now=0.5)
    assert tracker.check(now=1.2) == [2]
    assert tracker.suspected() == {2}
    assert tracker.check(now=1.2) == [], "no double suspicion"
    assert tracker.check(now=2.0) == [1]


def test_heartbeat_never_unsuspects():
    tracker = HeartbeatTracker(peers=[1], timeout=1.0)
    tracker.check(now=2.0)
    tracker.heard_from(1, now=2.1)  # a perfect detector ignores zombies
    assert tracker.suspected() == {1}


def test_heartbeat_ignores_unknown_peers():
    tracker = HeartbeatTracker(peers=[1], timeout=1.0)
    tracker.heard_from(99, now=0.5)
    assert tracker.peers == {1}


def test_heartbeat_timeout_must_be_positive():
    import pytest

    with pytest.raises(ValueError):
        HeartbeatTracker(peers=[], timeout=0)
