"""Unit tests for failure detectors."""

from repro.fd.heartbeat import HeartbeatTracker
from repro.fd.perfect import PerfectFailureDetector
from repro.sim.env import SimEnv


def test_perfect_fd_notifies_after_delay():
    env = SimEnv()
    fd = PerfectFailureDetector(env, detection_delay=0.005)
    seen = []
    fd.subscribe(seen.append)
    fd.report_crash(3)
    assert seen == [], "detection takes the configured delay"
    env.run_until_idle()
    assert seen == [3]
    assert env.now == 0.005
    assert fd.suspected() == {3}


def test_perfect_fd_reports_each_crash_once():
    env = SimEnv()
    fd = PerfectFailureDetector(env, detection_delay=0.001)
    seen = []
    fd.subscribe(seen.append)
    fd.report_crash(1)
    fd.report_crash(1)
    fd.report_crash(2)
    env.run_until_idle()
    assert sorted(seen) == [1, 2]


def test_perfect_fd_multiple_listeners():
    env = SimEnv()
    fd = PerfectFailureDetector(env, detection_delay=0.001)
    a, b = [], []
    fd.subscribe(a.append)
    fd.subscribe(b.append)
    fd.report_crash(0)
    env.run_until_idle()
    assert a == b == [0]


def test_heartbeat_tracker_suspects_after_timeout():
    tracker = HeartbeatTracker(peers=[1, 2], timeout=1.0, now=0.0)
    tracker.heard_from(1, now=0.5)
    assert tracker.check(now=1.2) == [2]
    assert tracker.suspected() == {2}
    assert tracker.check(now=1.2) == [], "no double suspicion"
    assert tracker.check(now=2.0) == [1]


def test_heartbeat_never_unsuspects():
    tracker = HeartbeatTracker(peers=[1], timeout=1.0)
    tracker.check(now=2.0)
    tracker.heard_from(1, now=2.1)  # a perfect detector ignores zombies
    assert tracker.suspected() == {1}


def test_heartbeat_ignores_unknown_peers():
    tracker = HeartbeatTracker(peers=[1], timeout=1.0)
    assert tracker.heard_from(99, now=0.5) is False
    assert tracker.peers == {1}
    assert tracker.check(now=5.0) == [1], "unknown peer never becomes a suspect"
    assert tracker.suspected() == {1}


def test_heartbeat_timeout_must_be_positive():
    import pytest

    with pytest.raises(ValueError):
        HeartbeatTracker(peers=[], timeout=0)


def test_heartbeat_suspicion_threshold_is_strict():
    """Silence of exactly ``timeout`` is still within the allowance;
    suspicion begins strictly beyond it."""
    tracker = HeartbeatTracker(peers=[1], timeout=1.0, now=0.0)
    assert tracker.check(now=1.0) == [], "now - last == timeout: still trusted"
    assert tracker.suspected() == frozenset()
    assert tracker.check(now=1.0 + 1e-9) == [1], "strictly past the timeout"


def test_imperfect_tracker_unsuspects_on_late_heartbeat():
    tracker = HeartbeatTracker(peers=[1, 2], timeout=1.0, now=0.0, imperfect=True)
    assert tracker.check(now=1.5) == [1, 2]
    assert tracker.heard_from(1, now=1.6) is True, "late heartbeat un-suspects"
    assert tracker.suspected() == {2}
    assert tracker.heard_from(1, now=1.7) is False, "already trusted again"
    # The recovered peer's silence clock restarted at the late heartbeat.
    assert tracker.check(now=2.5) == []
    assert tracker.check(now=2.7) == [1]


def test_perfect_tracker_never_unsuspects():
    tracker = HeartbeatTracker(peers=[1], timeout=1.0, now=0.0)
    tracker.check(now=2.0)
    assert tracker.heard_from(1, now=2.1) is False
    assert tracker.suspected() == {1}


def test_add_peer_starts_monitoring_from_given_time():
    tracker = HeartbeatTracker(peers=[1], timeout=1.0, now=0.0, imperfect=True)
    tracker.add_peer(2, now=5.0)
    assert tracker.peers == {1, 2}
    assert tracker.heard_from(2, now=5.5) is False, "known and trusted"
    # Peer 2's clock started at 5.0 (+ the 5.5 heartbeat), not at 0.
    assert 2 not in tracker.check(now=6.0)
    assert tracker.check(now=6.6) == [2]


def test_add_peer_is_idempotent_for_known_peers():
    tracker = HeartbeatTracker(peers=[1], timeout=1.0, now=0.0, imperfect=True)
    tracker.check(now=2.0)
    tracker.add_peer(1, now=2.0)
    assert tracker.suspected() == {1}, "re-adding preserves suspicion state"


def test_remove_peer_forgets_suspicion():
    tracker = HeartbeatTracker(peers=[1, 2], timeout=1.0, now=0.0, imperfect=True)
    tracker.check(now=2.0)
    assert tracker.suspected() == {1, 2}
    tracker.remove_peer(1)
    assert tracker.peers == {2}
    assert tracker.suspected() == {2}
    tracker.remove_peer(99)  # unknown: no-op
    # Re-adding starts from a clean slate at the supplied time.
    tracker.add_peer(1, now=2.0)
    assert 1 not in tracker.suspected()
    assert tracker.check(now=2.5) == []
    assert tracker.check(now=3.5) == [1]


def test_heartbeat_config_validation():
    import pytest

    from repro.errors import ConfigurationError
    from repro.fd.heartbeat import HeartbeatConfig

    HeartbeatConfig().validate()
    with pytest.raises(ConfigurationError):
        HeartbeatConfig(period=0).validate()
    with pytest.raises(ConfigurationError):
        HeartbeatConfig(period=0.2, timeout=0.1).validate()
    with pytest.raises(ConfigurationError):
        HeartbeatConfig(propose_grace=0.001).validate()
