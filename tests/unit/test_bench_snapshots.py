"""Gates on the *committed* BENCH_*.json snapshots.

The coded backend's acceptance number — ring bytes per write at 64 KiB
values reduced to <= 0.5x the replicated twin (k=2, n=4) — lives in the
committed snapshot, not in a live run.  Pinning it here means a rerun
that regenerates the snapshots with a regressed ratio fails tier-1
before CI ever looks at throughput.
"""

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The coded pair must hold the floor in every committed snapshot.
SNAPSHOTS = ("BENCH_baseline.json", "BENCH_batched.json")


def _scenario(snapshot: dict, name: str) -> dict:
    for record in snapshot["scenarios"]:
        if record["name"] == name:
            return record
    raise AssertionError(f"{name} missing from snapshot")


@pytest.mark.parametrize("filename", SNAPSHOTS)
def test_coded_ring_bytes_at_most_half_of_replicated(filename):
    snapshot = json.loads((REPO_ROOT / filename).read_text())
    replicated = _scenario(snapshot, "replicated_large_value")
    coded = _scenario(snapshot, "coded_large_value")
    rep_bytes = replicated["wire"]["ring_bytes_per_op"]
    coded_bytes = coded["wire"]["ring_bytes_per_op"]
    assert rep_bytes and coded_bytes
    assert coded_bytes <= 0.5 * rep_bytes, (
        f"{filename}: coded ring bytes/op {coded_bytes} exceeds half the "
        f"replicated pair's {rep_bytes}"
    )
    # The saving must come from actual striping, not an idle scenario.
    assert coded["coding"]["fragment_stores"] > 0
    assert coded["write"]["ops"] > 0


@pytest.mark.parametrize("filename", SNAPSHOTS)
def test_large_value_pair_differs_only_in_backend(filename):
    """The crossover quote is meaningless unless the pair is twinned:
    same workload, same ring size, same windows — value backend aside."""
    snapshot = json.loads((REPO_ROOT / filename).read_text())
    replicated = _scenario(snapshot, "replicated_large_value")
    coded = _scenario(snapshot, "coded_large_value")
    assert replicated["servers"] == coded["servers"]
    assert replicated["topology"] == coded["topology"]
    assert replicated["window_s"] == coded["window_s"]
    assert replicated["coding"] is None
    assert coded["coding"] is not None


@pytest.mark.parametrize("filename", SNAPSHOTS)
def test_elastic_beats_static_by_two_x_on_the_skewed_pair(filename):
    """ROADMAP item 3's acceptance number: under the Zipf(1.1) hot-block
    workload, elastic placement (live migration + splits) must deliver at
    least 2x the combined throughput of the static packed twin — and the
    gain must come from migrations actually happening, not a lucky run."""
    snapshot = json.loads((REPO_ROOT / filename).read_text())
    static = _scenario(snapshot, "skewed_static")
    elastic = _scenario(snapshot, "skewed_elastic")
    static_ops = static["read"]["sim_ops_per_s"] + static["write"]["sim_ops_per_s"]
    elastic_ops = elastic["read"]["sim_ops_per_s"] + elastic["write"]["sim_ops_per_s"]
    assert static_ops > 0
    assert elastic_ops >= 2.0 * static_ops, (
        f"{filename}: elastic {elastic_ops:.0f} sim ops/s is under 2x the "
        f"static pair's {static_ops:.0f}"
    )
    assert elastic["sharding"]["migrations_completed"] >= 1
    assert elastic["sharding"]["placement_version"] >= 1
    # The static twin must be genuinely static — no rebalancer at all.
    assert static["sharding"]["migrations_completed"] == 0
    assert static["sharding"]["placement_version"] == 0


@pytest.mark.parametrize("filename", SNAPSHOTS)
def test_skewed_pair_differs_only_in_elasticity(filename):
    """Same twinning rule as the coded pair: the 2x quote only means
    something if the scenarios match in everything but the rebalancer."""
    snapshot = json.loads((REPO_ROOT / filename).read_text())
    static = _scenario(snapshot, "skewed_static")
    elastic = _scenario(snapshot, "skewed_elastic")
    assert static["servers"] == elastic["servers"]
    assert static["topology"] == elastic["topology"]
    assert static["window_s"] == elastic["window_s"]
    assert static["sharding"]["num_blocks"] == elastic["sharding"]["num_blocks"]
    assert static["sharding"]["rings"] == elastic["sharding"]["rings"]
    assert static["sharding"]["elastic"] is False
    assert elastic["sharding"]["elastic"] is True
