"""GF(256) erasure-coding round trips: the MDS property, exhaustively.

The coded value backend rests on two facts proven here for every
geometry the repo ships: *any* k of the n fragments reconstruct the
value byte-identically, and k-1 fragments never suffice.
"""

import itertools
import random

import pytest

from repro.core.coding import (
    CodingError,
    coding_matrix,
    decode,
    encode,
    gf_inv,
    gf_mul,
    pack_fragments,
    stripe_size,
    unpack_fragments,
)

GEOMETRIES = [(1, 1), (1, 3), (2, 3), (2, 4), (3, 4), (3, 6), (4, 7)]


def test_gf_field_axioms_on_samples():
    rng = random.Random(7)
    for _ in range(200):
        a, b, c = rng.randrange(256), rng.randrange(256), rng.randrange(256)
        assert gf_mul(a, b) == gf_mul(b, a)
        assert gf_mul(a, gf_mul(b, c)) == gf_mul(gf_mul(a, b), c)
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)
        if a:
            assert gf_mul(a, gf_inv(a)) == 1


@pytest.mark.parametrize("k,n", GEOMETRIES)
def test_any_k_of_n_fragments_reconstruct(k, n):
    rng = random.Random(1000 * k + n)
    for size in (0, 1, k, 17, 4096):
        value = rng.randbytes(size)
        fragments = encode(value, k, n)
        assert len(fragments) == n
        assert len({len(f) for f in fragments}) == 1
        assert len(fragments[0]) == stripe_size(size, k)
        for combo in itertools.combinations(range(n), k):
            subset = {index: fragments[index] for index in combo}
            assert decode(subset, k, n) == value, (size, combo)


@pytest.mark.parametrize("k,n", [(2, 3), (2, 4), (3, 4), (3, 6)])
def test_k_minus_one_fragments_do_not_suffice(k, n):
    value = random.Random(42).randbytes(257)
    fragments = encode(value, k, n)
    for combo in itertools.combinations(range(n), k - 1):
        with pytest.raises(CodingError):
            decode({index: fragments[index] for index in combo}, k, n)


def test_data_fragments_are_verbatim_stripes():
    # Systematic code: holding all k data fragments means decoding is
    # concatenation — the fragments literally are the striped payload.
    value = bytes(range(10)) * 5
    k, n = 3, 5
    fragments = encode(value, k, n)
    raw = b"".join(fragments[:k])
    assert value in raw


def test_single_parity_is_xor():
    # k = n-1 takes the fast path; the parity fragment must equal the
    # XOR of the data fragments (what the generic matrix row encodes).
    value = b"the quick brown fox" * 11
    fragments = encode(value, 3, 4)
    xor = bytes(
        a ^ b ^ c for a, b, c in zip(fragments[0], fragments[1], fragments[2])
    )
    assert fragments[3] == xor


def test_matrix_is_systematic_and_mds():
    for k, n in GEOMETRIES:
        matrix = coding_matrix(k, n)
        assert len(matrix) == n and all(len(row) == k for row in matrix)
        for i in range(k):
            assert matrix[i] == tuple(1 if j == i else 0 for j in range(k))


def test_decode_rejects_malformed_sets():
    fragments = encode(b"payload", 2, 4)
    with pytest.raises(CodingError):
        decode({0: fragments[0]}, 2, 4)
    with pytest.raises(CodingError):
        decode({0: fragments[0], 9: fragments[1]}, 2, 4)
    with pytest.raises(CodingError):
        decode({0: fragments[0], 1: fragments[1][:-1]}, 2, 4)


def test_decode_rejects_corrupt_length_prefix():
    fragments = encode(b"", 2, 4)
    # Flip the length prefix (lives in fragment 0 of the systematic code)
    # to something absurd; decode must refuse rather than over-read.
    corrupt = b"\xff\xff\xff\xff" + fragments[0][4:]
    with pytest.raises(CodingError):
        decode({0: corrupt, 1: fragments[1]}, 2, 4)


def test_geometry_validation():
    with pytest.raises(CodingError):
        coding_matrix(0, 4)
    with pytest.raises(CodingError):
        coding_matrix(5, 4)
    with pytest.raises(CodingError):
        coding_matrix(2, 300)


def test_fragment_blob_round_trip():
    fragments = {0: b"", 2: b"\x00\xff", 7: b"abcdef"}
    assert unpack_fragments(pack_fragments(fragments)) == fragments
    assert pack_fragments({}) == b""
    assert unpack_fragments(b"") == {}


def test_fragment_blob_rejects_truncation():
    blob = pack_fragments({1: b"fragment-bytes"})
    for cut in range(1, len(blob)):
        with pytest.raises(CodingError):
            unpack_fragments(blob[:cut])
