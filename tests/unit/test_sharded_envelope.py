"""ShardEnvelope accounting and per-block ring fairness."""

import pytest

from repro.core.messages import (
    BASE_WIRE_BYTES,
    OP_ID_WIRE_BYTES,
    TAG_WIRE_BYTES,
    ClientRead,
    ClientWrite,
    Commit,
    OpId,
    PreWrite,
    payload_size,
)
from repro.core.sharded import BlockStore, ShardEnvelope
from repro.core.tags import Tag
from repro.runtime.sim_net import _payload_of


# ----------------------------------------------------------------------
# payload_bytes accounting
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "inner",
    [
        ClientWrite(OpId(1, 0), b"x" * 100),
        ClientRead(OpId(2, 1)),
        PreWrite(Tag(3, 0), b"value", OpId(1, 2)),
        PreWrite(Tag(4, 1), b"v", OpId(1, 3), (Tag(1, 0), Tag(2, 1))),
        Commit((Tag(5, 2),)),
    ],
    ids=["write", "read", "prewrite", "prewrite+commits", "commit"],
)
def test_envelope_charges_block_header_plus_inner(inner):
    envelope = ShardEnvelope(7, inner)
    assert envelope.payload_bytes() == 4 + payload_size(inner)


def test_envelope_write_size_breaks_down_exactly():
    value = b"p" * 256
    envelope = ShardEnvelope(0, ClientWrite(OpId(9, 4), value))
    assert envelope.payload_bytes() == (
        4 + BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + len(value)
    )
    read_env = ShardEnvelope(0, ClientRead(OpId(9, 5)))
    # Reads always carry a session-tag slot (Tag.ZERO when unset).
    assert read_env.payload_bytes() == (
        4 + BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES
    )
    commits = (Tag(1, 0), Tag(2, 1), Tag(3, 2))
    pre = ShardEnvelope(1, PreWrite(Tag(4, 0), value, OpId(9, 6), commits))
    assert pre.payload_bytes() == (
        4 + BASE_WIRE_BYTES + TAG_WIRE_BYTES + OP_ID_WIRE_BYTES + 8 + 4
        + len(value) + TAG_WIRE_BYTES * len(commits)
    )


def test_runtime_charges_the_envelope_not_the_inner():
    """The NIC accounting sizes messages via payload_bytes() when the
    message provides one — the envelope's 4-byte block header must be
    paid on the wire."""
    inner = ClientWrite(OpId(1, 0), b"data")
    envelope = ShardEnvelope(3, inner)
    assert _payload_of(envelope) == payload_size(inner) + 4
    assert _payload_of(inner) == payload_size(inner)


# ----------------------------------------------------------------------
# Round-robin fairness across blocks under mixed load
# ----------------------------------------------------------------------


class _StubProto:
    """Stands in for a per-block ServerProtocol with a message backlog."""

    def __init__(self, backlog: int):
        self.backlog = backlog
        self.successor = 1

    def next_directed_message(self):
        return None

    def next_ring_message(self):
        if self.backlog == 0:
            return None
        self.backlog -= 1
        return "msg"

    def next_ring_batch(self, limit: int):
        batch = []
        while len(batch) < limit:
            message = self.next_ring_message()
            if message is None:
                break
            batch.append(message)
        return batch


def _sharded_host(num_blocks: int, **kwargs):
    store = BlockStore.build(num_servers=2, num_blocks=num_blocks, seed=0, **kwargs)
    return store.cluster.servers[0]


def _unbatched():
    from repro.core.config import ProtocolConfig

    return ProtocolConfig(batch_max_messages=1)


def test_ring_source_round_robins_across_blocks():
    host = _sharded_host(3, protocol=_unbatched())
    host.protos = {0: _StubProto(2), 1: _StubProto(2), 2: _StubProto(2)}
    order = []
    for _ in range(6):
        dst, envelope, kind = host._ring_source()
        assert (dst, kind) == ("s1", "ring")
        order.append(envelope.reg)
    assert order == [0, 1, 2, 0, 1, 2], "each block gets one slot per cycle"
    assert host._ring_source() is None


def test_ring_source_skips_empty_blocks_without_starving_others():
    """Mixed load: block 1 idle, block 0 loaded, block 2 trickling.  The
    loaded block must not starve the trickle."""
    host = _sharded_host(3, protocol=_unbatched())
    host.protos = {0: _StubProto(4), 1: _StubProto(0), 2: _StubProto(2)}
    order = [host._ring_source()[1].reg for _ in range(6)]
    assert order == [0, 2, 0, 2, 0, 0]


def test_ring_source_batches_within_one_block_slot():
    """With batching on, one frame drains up to the limit from a single
    block — never mixing blocks (their ring views are independent) — and
    the slot still advances one block per frame."""
    from repro.core.config import ProtocolConfig

    host = _sharded_host(3, protocol=ProtocolConfig(batch_max_messages=4))
    host.protos = {0: _StubProto(6), 1: _StubProto(1), 2: _StubProto(2)}
    frames = []
    while True:
        item = host._ring_source()
        if item is None:
            break
        dst, payload, kind = item
        assert (dst, kind) == ("s1", "ring")
        envelopes = payload if isinstance(payload, list) else [payload]
        assert len({env.reg for env in envelopes}) == 1, "one block per frame"
        frames.append((envelopes[0].reg, len(envelopes)))
    assert frames == [(0, 4), (1, 1), (2, 2), (0, 2)]


def test_ring_source_resumes_after_idle_at_next_block():
    """The rotor survives idle periods: after a drained round, new work
    on a lower-numbered block does not reset the fairness pointer."""
    host = _sharded_host(3)
    stubs = {0: _StubProto(1), 1: _StubProto(0), 2: _StubProto(0)}
    host.protos = stubs
    assert host._ring_source()[1].reg == 0
    assert host._ring_source() is None
    stubs[0].backlog = 1
    stubs[1].backlog = 1
    # Pointer sits after block 0, so block 1 is served first.
    assert host._ring_source()[1].reg == 1
    assert host._ring_source()[1].reg == 0


def test_block_store_round_trip_still_works_end_to_end():
    store = BlockStore.build(num_servers=3, num_blocks=4, seed=2)
    for block in range(4):
        store.write_block(block, b"block-%d" % block)
    for block in range(4):
        assert store.read_block(block) == b"block-%d" % block


# ----------------------------------------------------------------------
# Reply pump: stale entries are skipped iteratively
# ----------------------------------------------------------------------


def test_reply_source_skips_stale_entries_without_recursing():
    """A burst of replies addressed to departed clients must be skipped
    in a loop: the old implementation recursed once per stale entry and
    blew the stack on backlogs past the interpreter's recursion limit."""
    from repro.runtime.interface import Reply

    store = BlockStore.build(num_servers=2, num_blocks=1, seed=5)
    host = store.cluster.servers[0]
    known = store._client.client_id
    host._reply_queue.extend(Reply(known + 1000, "gone") for _ in range(5000))
    host._reply_queue.append(Reply(known, "kept"))
    assert host._reply_source() == (store._client.name, "kept", "reply")
    assert not host._reply_queue
    assert host._reply_source() is None
