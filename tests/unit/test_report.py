"""Unit tests for the paper-style table/chart rendering."""

from repro.bench.report import render_chart, render_table


def test_table_alignment_and_formatting():
    out = render_table(["n", "Mbit/s"], [[2, 186.33], [8, 745.0]])
    lines = out.splitlines()
    assert lines[0].split() == ["n", "Mbit/s"]
    assert "186.3" in lines[2]
    assert "745.0" in lines[3]
    # Columns right-aligned: every line same width.
    assert len({len(line) for line in lines}) == 1


def test_table_with_string_cells():
    out = render_table(["config", "x"], [["default", 1.0], ["no piggyback", 2.0]])
    assert "no piggyback" in out


def test_table_empty_rows():
    out = render_table(["a", "b"], [])
    assert "a" in out and "b" in out


def test_chart_contains_series_markers_and_legend():
    out = render_chart([2, 4, 8], {"reads": [10.0, 20.0, 40.0], "writes": [5.0, 5.0, 5.0]})
    assert "o=reads" in out and "*=writes" in out
    assert out.count("o") >= 3
    assert "+" in out  # axis


def test_chart_handles_empty_series():
    assert render_chart([1], {}) == "(no data)"


def test_chart_y_label():
    out = render_chart([1, 2], {"s": [1.0, 2.0]}, y_label="Mbit/s")
    assert out.splitlines()[0].strip() == "Mbit/s"
