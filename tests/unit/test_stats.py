"""Unit tests for throughput/latency statistics."""

import math

import pytest

from repro.analysis.stats import (
    LatencyStats,
    ThroughputSample,
    linear_fit,
    mbit_per_s,
    mean,
    percentile,
    r_squared,
)


def test_mbit_per_s():
    assert mbit_per_s(1_000_000, 8.0) == 1.0
    with pytest.raises(ValueError):
        mbit_per_s(1, 0)


def test_throughput_sample():
    s = ThroughputSample(operations=100, payload_bytes=100 * 4096, seconds=2.0)
    assert s.ops_per_s == 50.0
    assert abs(s.mbit_per_s - 100 * 4096 * 8 / 2 / 1e6) < 1e-9


def test_throughput_sample_zero_duration_guards_consistently():
    """Regression: ops_per_s used to raise a bare ZeroDivisionError for
    a zero-duration window while mbit_per_s raised ValueError — both
    properties must reject the degenerate window the same way."""
    degenerate = ThroughputSample(operations=5, payload_bytes=5 * 64, seconds=0.0)
    with pytest.raises(ValueError):
        degenerate.ops_per_s
    with pytest.raises(ValueError):
        degenerate.mbit_per_s
    negative = ThroughputSample(operations=5, payload_bytes=5 * 64, seconds=-1.0)
    with pytest.raises(ValueError):
        negative.ops_per_s
    with pytest.raises(ValueError):
        negative.mbit_per_s


def test_latency_stats_percentiles():
    stats = LatencyStats.from_samples([i / 1000 for i in range(1, 101)])
    assert stats.count == 100
    assert stats.p50 == 0.050
    assert stats.p95 == 0.095
    assert stats.p99 == 0.099
    assert stats.max == 0.100
    assert abs(stats.mean - 0.0505) < 1e-12
    assert abs(stats.mean_ms - 50.5) < 1e-9


def test_latency_stats_empty():
    stats = LatencyStats.from_samples([])
    assert stats.count == 0 and math.isnan(stats.mean)


def test_percentile_bounds():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)
    with pytest.raises(ValueError):
        percentile([1.0], -0.5)
    assert percentile([1.0, 2.0], 0) == 1.0
    assert percentile([1.0, 2.0], 100) == 2.0


def test_percentile_zero_returns_minimum():
    """The 0th percentile is the smallest sample (nearest-rank clamps
    the rank to 1), for any input size — including a singleton."""
    assert percentile([3.5], 0.0) == 3.5
    assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0
    assert percentile(sorted([9.0, -2.0, 4.0]), 0.0) == -2.0


def test_mean_rejects_empty():
    with pytest.raises(ValueError):
        mean([])
    assert mean([1.0, 3.0]) == 2.0


def test_linear_fit_exact_line():
    xs = [1, 2, 3, 4]
    ys = [3.0, 5.0, 7.0, 9.0]
    slope, intercept = linear_fit(xs, ys)
    assert abs(slope - 2.0) < 1e-12
    assert abs(intercept - 1.0) < 1e-12
    assert r_squared(xs, ys) == pytest.approx(1.0)


def test_linear_fit_flat_line_r2():
    xs = [1, 2, 3, 4]
    ys = [5.0, 5.0, 5.0, 5.0]
    slope, _ = linear_fit(xs, ys)
    assert abs(slope) < 1e-12
    assert r_squared(xs, ys) == 1.0


def test_linear_fit_rejects_degenerate():
    with pytest.raises(ValueError):
        linear_fit([1], [2])
    with pytest.raises(ValueError):
        linear_fit([1, 1], [2, 3])
