"""Unit tests for the block-mode workload knobs: Zipf skew, hotsets,
mixed value sizes, and the spec validation that guards them."""

import pytest

from repro.core.sharded import BlockStore
from repro.errors import ConfigurationError
from repro.workload.generator import LoadDriver, WorkloadSpec


def _driver(spec, seed=5):
    cluster = BlockStore.build(
        num_servers=2, num_blocks=spec.num_blocks, seed=91
    ).cluster
    return LoadDriver(cluster, spec, seed=seed)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_block_knobs_require_block_mode():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(block_skew=1.0).validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(hot_blocks=(0,), hot_fraction=0.5).validate()


def test_negative_skew_rejected():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(num_blocks=4, block_skew=-0.1).validate()


def test_hot_fraction_bounds():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(num_blocks=4, hot_blocks=(0,), hot_fraction=1.5).validate()


def test_hotset_and_fraction_must_come_together():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(num_blocks=4, hot_blocks=(0,)).validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(num_blocks=4, hot_fraction=0.3).validate()


def test_hot_blocks_in_range_and_unique():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(num_blocks=4, hot_blocks=(4,), hot_fraction=0.3).validate()
    with pytest.raises(ConfigurationError):
        WorkloadSpec(
            num_blocks=4, hot_blocks=(1, 1), hot_fraction=0.3
        ).validate()


def test_value_sizes_floor():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(value_sizes=(8,)).validate()
    WorkloadSpec(value_sizes=(64, 4096)).validate()


# ----------------------------------------------------------------------
# Distribution shape
# ----------------------------------------------------------------------


def test_uniform_draws_cover_all_blocks_evenly():
    spec = WorkloadSpec(num_blocks=4, reader_machines_per_server=1)
    driver = _driver(spec)
    for _ in range(4000):
        driver._draw_block()
    counts = driver.block_ops_issued
    assert set(counts) == {0, 1, 2, 3}
    for block in counts:
        assert 800 < counts[block] < 1200, (
            f"uniform draw skewed: {counts}"
        )


def test_zipf_draws_are_rank_ordered():
    """Zipf(1.1) over 8 blocks: the issued counts must be monotone
    decreasing in rank, with block 0 taking the plurality (~40 %:
    1 / sum(1/(r+1)^1.1 for r in 0..7) = 0.398)."""
    spec = WorkloadSpec(
        num_blocks=8, block_skew=1.1, reader_machines_per_server=1
    )
    driver = _driver(spec)
    total = 20000
    for _ in range(total):
        driver._draw_block()
    counts = [driver.block_ops_issued.get(block, 0) for block in range(8)]
    assert sum(counts) == total
    for rank in range(7):
        assert counts[rank] > counts[rank + 1], (
            f"rank {rank} colder than rank {rank + 1}: {counts}"
        )
    assert 0.35 < counts[0] / total < 0.45


def test_hotset_takes_its_configured_fraction():
    spec = WorkloadSpec(
        num_blocks=8, hot_blocks=(5, 6), hot_fraction=0.6,
        reader_machines_per_server=1,
    )
    driver = _driver(spec)
    total = 20000
    for _ in range(total):
        driver._draw_block()
    # The hotset absorbs its fraction *plus* the uniform law's share of
    # those blocks: 0.6 + 0.4 * 2/8 = 0.7 expected.
    hot = driver.block_ops_issued.get(5, 0) + driver.block_ops_issued.get(6, 0)
    assert 0.65 < hot / total < 0.75, f"hotset share {hot / total:.3f}"


def test_mixed_value_sizes_draw_from_the_tuple():
    spec = WorkloadSpec(
        num_blocks=2, value_sizes=(64, 1024, 8192),
        reader_machines_per_server=1,
    )
    driver = _driver(spec)
    seen = {driver._draw_value_size() for _ in range(200)}
    assert seen == {64, 1024, 8192}
    value = driver._next_value(1, 64)
    assert len(value) == 64


def test_fixed_value_size_without_tuple():
    spec = WorkloadSpec(num_blocks=2, reader_machines_per_server=1)
    driver = _driver(spec)
    assert driver._draw_value_size() == spec.value_size
    # Legacy callers that never pass a size still get the spec default.
    assert len(driver._next_value(1)) == spec.value_size


def test_block_mode_machines_are_shard_clients():
    from repro.core.sharded import ShardClientHost

    spec = WorkloadSpec(num_blocks=2, reader_machines_per_server=1)
    driver = _driver(spec)
    hosts = {host for host, _cid, _kind in driver._clients}
    assert hosts and all(isinstance(h, ShardClientHost) for h in hosts)
