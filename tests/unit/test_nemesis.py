"""Unit tests for the nemesis fault controller's link mechanics."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.env import SimEnv
from repro.sim.nemesis import Nemesis
from repro.sim.network import Network
from repro.sim.nic import Nic
from repro.sim.process import SimProcess
from repro.sim.wire import LinkProfile, WireModel


def _rig(prop=0.01, bandwidth=8_000.0):
    """A two-NIC network with a nemesis attached, 1-byte wire units."""
    env = SimEnv(seed=42)
    wire = WireModel(app_header=0, segment_overhead=0, min_frame=1, mss=10**9)
    net = Network(env, "lan", wire, propagation_delay=prop)
    nics = [Nic(env, f"n{i}", bandwidth) for i in range(3)]
    for nic in nics:
        net.attach(nic)
    nemesis = Nemesis(env)
    net.faults = nemesis
    return env, net, nics, nemesis


def test_unfaulted_links_behave_identically():
    env, net, nics, _ = _rig()
    got = []
    net.unicast(nics[0], nics[1], 500, "hello", lambda m: got.append((m, env.now)))
    env.run_until_idle()
    # Same 0.5s tx + 0.01 prop + 0.5s rx as without a nemesis.
    assert got == [("hello", pytest.approx(1.01))]


def test_cut_hold_buffers_and_heals_in_fifo_order():
    env, net, nics, nemesis = _rig()
    got = []
    nemesis.cut("n0", "n1")
    net.unicast(nics[0], nics[1], 100, "a", got.append)
    net.unicast(nics[0], nics[1], 100, "b", got.append)
    env.run(until=0.5)
    assert got == [], "cut link must not deliver"
    assert env.trace.counters["nemesis.held"] == 2
    nemesis.heal("n0", "n1")
    env.run_until_idle()
    assert got == ["a", "b"], "heal must flush in FIFO order"
    assert env.trace.counters["nemesis.held_delivered"] == 2


def test_cut_drop_mode_loses_frames():
    env, net, nics, nemesis = _rig()
    got = []
    nemesis.cut("n0", "n1", mode="drop")
    net.unicast(nics[0], nics[1], 100, "a", got.append)
    env.run_until_idle()
    nemesis.heal("n0", "n1")
    env.run_until_idle()
    assert got == []
    assert env.trace.counters["nemesis.cut_drops"] == 1


def test_cut_is_directional():
    env, net, nics, nemesis = _rig()
    got = []
    nemesis.cut("n0", "n1")
    net.unicast(nics[1], nics[0], 100, "reverse", got.append)
    env.run_until_idle()
    assert got == ["reverse"], "only n0->n1 is cut, not n1->n0"


def test_partition_cuts_cross_group_links_both_ways():
    env, net, nics, nemesis = _rig()
    got = []
    nemesis.partition([["n0"], ["n1", "n2"]])
    net.unicast(nics[0], nics[1], 100, "x", got.append)
    net.unicast(nics[2], nics[0], 100, "y", got.append)
    net.unicast(nics[1], nics[2], 100, "intra", got.append)
    env.run_until_idle()
    assert got == ["intra"], "same-group traffic flows, cross-group is cut"
    nemesis.heal_partition([["n0"], ["n1", "n2"]])
    env.run_until_idle()
    assert sorted(got) == ["intra", "x", "y"]


def test_drop_probability_one_always_drops():
    env, net, nics, nemesis = _rig()
    got = []
    nemesis.add_link_rule("n0", "n1", LinkProfile(drop_p=1.0))
    for i in range(5):
        net.unicast(nics[0], nics[1], 10, i, got.append)
    env.run_until_idle()
    assert got == []
    assert env.trace.counters["nemesis.drops"] == 5


def test_duplicate_probability_one_delivers_twice():
    env, net, nics, nemesis = _rig()
    got = []
    nemesis.add_link_rule("n0", "n1", LinkProfile(dup_p=1.0))
    net.unicast(nics[0], nics[1], 10, "m", got.append)
    env.run_until_idle()
    assert got == ["m", "m"]
    assert env.trace.counters["nemesis.dup_deliveries"] == 1


def test_delay_with_jitter_preserves_per_link_fifo():
    env, net, nics, nemesis = _rig(prop=0.001)
    got = []
    nemesis.add_link_rule(
        "n0", "n1", LinkProfile(extra_delay=0.01, jitter=0.5)
    )
    for i in range(20):
        net.unicast(nics[0], nics[1], 1, i, got.append)
    env.run_until_idle()
    assert got == list(range(20)), "jitter must never reorder a link"
    assert env.trace.counters["nemesis.delayed"] == 20


def test_rule_removal_restores_the_link():
    env, net, nics, nemesis = _rig()
    got = []
    rule = nemesis.add_link_rule("n0", "n1", LinkProfile(drop_p=1.0))
    net.unicast(nics[0], nics[1], 10, "lost", got.append)
    env.run_until_idle()
    nemesis.remove_link_rule("n0", "n1", rule)
    net.unicast(nics[0], nics[1], 10, "kept", got.append)
    env.run_until_idle()
    assert got == ["kept"]


def test_symmetric_rule_covers_both_directions():
    env, net, nics, nemesis = _rig()
    got = []
    nemesis.add_link_rule("n0", "n1", LinkProfile(drop_p=1.0), symmetric=True)
    net.unicast(nics[0], nics[1], 10, "fwd", got.append)
    net.unicast(nics[1], nics[0], 10, "rev", got.append)
    env.run_until_idle()
    assert got == []


def test_held_frames_from_a_crashed_sender_are_dropped():
    env, net, nics, nemesis = _rig()
    owner = SimProcess(env, "n0")
    nics[0].owner = owner
    got = []
    nemesis.cut("n0", "n1")
    net.unicast(nics[0], nics[1], 100, "zombie", got.append)
    env.run(until=0.2)
    owner.crash()
    nemesis.heal("n0", "n1")
    env.run_until_idle()
    assert got == [], "the nemesis never delivers on behalf of the dead"
    assert env.trace.counters["nemesis.posthumous_drops"] == 1


def test_throttle_slows_and_unthrottle_restores():
    env, net, nics, nemesis = _rig()
    nemesis_topo = Nemesis(env)  # no topology: NIC faults must fail loudly
    with pytest.raises(ConfigurationError):
        nemesis_topo.throttle("n0", 2.0)
    # Direct NIC throttle (what the topology-aware path does per NIC).
    nics[0].throttle(4.0)
    got = []
    net.unicast(nics[0], nics[1], 100, "slow", lambda m: got.append(env.now))
    env.run_until_idle()
    # tx at 2_000 bps: 0.4s, prop 0.01, rx (unthrottled nic1) 0.1s.
    assert got == [pytest.approx(0.51)]
    nics[0].unthrottle()
    assert nics[0].bandwidth_bps == nics[0].rated_bps


def test_pause_holds_port_and_resume_flushes():
    env, net, nics, nemesis = _rig()
    got = []
    nics[1].pause()
    net.unicast(nics[0], nics[1], 100, "m", got.append)
    env.run(until=1.0)
    assert got == [], "rx port paused: frame queued, not delivered"
    nics[1].resume()
    env.run_until_idle()
    assert got == ["m"]


def test_pause_of_tx_port_stops_sending():
    env, net, nics, nemesis = _rig()
    got = []
    nics[0].tx.pause()
    net.unicast(nics[0], nics[1], 100, "m", got.append)
    env.run(until=1.0)
    assert got == []
    nics[0].tx.resume()
    env.run_until_idle()
    assert got == ["m"]
