"""Validation and algebra tests for the declarative FaultPlan."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sim.env import SimEnv
from repro.sim.faults import FaultPlan
from repro.sim.process import SimProcess
from repro.sim.wire import LinkProfile


# ----------------------------------------------------------------------
# Crash validation (the historical gaps: NaN/negative times and
# duplicate crashes used to be silently accepted and double-scheduled).
# ----------------------------------------------------------------------


def test_crash_rejects_negative_time():
    with pytest.raises(ConfigurationError):
        FaultPlan().crash("s0", at=-0.1)


def test_crash_rejects_nan_time():
    with pytest.raises(ConfigurationError):
        FaultPlan().crash("s0", at=math.nan)


def test_crash_rejects_non_number_time():
    with pytest.raises(ConfigurationError):
        FaultPlan().crash("s0", at="soon")


def test_crash_rejects_boolean_time():
    # bool subclasses int: plan.crash("s0", True) would otherwise be
    # silently accepted as a crash at t=1.0.
    with pytest.raises(ConfigurationError):
        FaultPlan().crash("s0", at=True)
    with pytest.raises(ConfigurationError):
        FaultPlan().crash("s0", at=False)
    with pytest.raises(ConfigurationError):
        FaultPlan().restart("s0", at=True)
    with pytest.raises(ConfigurationError):
        FaultPlan().pause("s0", at=True, resume_at=2.0)
    with pytest.raises(ConfigurationError):
        FaultPlan().drop("a", "b", p=0.5, at=0.1, until=True)


def test_duplicate_crash_of_same_process_rejected():
    plan = FaultPlan().crash("s0", at=0.1)
    with pytest.raises(ConfigurationError):
        plan.crash("s0", at=0.2)


def test_sequential_rejects_duplicate_names():
    with pytest.raises(ConfigurationError):
        FaultPlan.sequential(["s0", "s1", "s0"], first_at=0.1, spacing=0.1)


# ----------------------------------------------------------------------
# Crash/restart interval validation: per process the lifecycle events
# must strictly alternate in time, starting with a crash.
# ----------------------------------------------------------------------


def test_restart_of_live_process_rejected():
    with pytest.raises(ConfigurationError, match="not down"):
        FaultPlan().restart("s0", at=0.5)
    # A restart *before* the only crash is equally impossible.
    plan = FaultPlan().crash("s0", at=0.5)
    with pytest.raises(ConfigurationError, match="not down"):
        plan.restart("s0", at=0.2)


def test_crash_while_down_rejected_but_crash_after_restart_allowed():
    plan = FaultPlan().crash("s0", at=0.1).restart("s0", at=0.4)
    plan.crash("s0", at=0.7)  # up again at 0.7: fine
    with pytest.raises(ConfigurationError, match="already down"):
        plan.crash("s0", at=0.9)  # down since 0.7, no restart between
    plan.restart("s0", at=0.9)
    assert len(plan.crashes) == 2
    assert len(plan.restarts) == 2


def test_double_restart_rejected():
    plan = FaultPlan().crash("s0", at=0.1).restart("s0", at=0.4)
    with pytest.raises(ConfigurationError, match="not down"):
        plan.restart("s0", at=0.6)


def test_simultaneous_lifecycle_events_rejected():
    plan = FaultPlan().crash("s0", at=0.1)
    with pytest.raises(ConfigurationError, match="same time"):
        plan.restart("s0", at=0.1)


def test_lifecycle_validation_is_call_order_independent():
    # Builders may append events out of chronological order; validity is
    # a property of the times.
    plan = FaultPlan()
    plan.crash("s0", at=0.1)
    plan.crash("s1", at=0.2)  # other processes are independent timelines
    plan.restart("s0", at=0.8)
    with pytest.raises(ConfigurationError):
        plan.crash("s0", at=0.5)  # would land inside s0's down interval


def test_restart_applies_and_rearms_the_process():
    env = SimEnv()
    process = SimProcess(env, "s0")
    FaultPlan().crash("s0", at=0.2).restart("s0", at=0.6).apply(
        env, {"s0": process}
    )
    env.run(until=0.4)
    assert not process.alive
    env.run_until_idle()
    assert process.alive
    assert process.restarts == 1
    assert env.trace.counters["process.crashes"] == 1
    assert env.trace.counters["process.restarts"] == 1


def test_restart_listeners_fire_per_cycle():
    env = SimEnv()
    process = SimProcess(env, "s0")
    seen = []
    process.on_restart(lambda p: seen.append(p.restarts))
    process.restart()  # idempotent on a live process
    assert seen == []
    process.crash()
    process.restart()
    process.crash()
    process.restart()
    assert seen == [1, 2]
    assert env.trace.counters["process.restarts"] == 2


def test_crash_applies_once_per_process():
    env = SimEnv()
    process = SimProcess(env, "s0")
    FaultPlan().crash("s0", at=0.5).apply(env, {"s0": process})
    env.run_until_idle()
    assert not process.alive
    assert env.trace.counters["process.crashes"] == 1


def test_apply_unknown_process_raises():
    env = SimEnv()
    with pytest.raises(ConfigurationError):
        FaultPlan().crash("ghost", at=0.1).apply(env, {})


# ----------------------------------------------------------------------
# Window and parameter validation for the extended algebra.
# ----------------------------------------------------------------------


def test_partition_window_must_be_ordered():
    with pytest.raises(ConfigurationError):
        FaultPlan().partition([["s0"], ["s1"]], at=0.5, heal_at=0.5)


def test_partition_needs_two_nonempty_groups():
    with pytest.raises(ConfigurationError):
        FaultPlan().partition([["s0", "s1"]], at=0.1, heal_at=0.2)
    with pytest.raises(ConfigurationError):
        FaultPlan().partition([["s0"], []], at=0.1, heal_at=0.2)


def test_partition_rejects_process_in_two_groups():
    with pytest.raises(ConfigurationError):
        FaultPlan().partition([["s0", "s1"], ["s1"]], at=0.1, heal_at=0.2)


def test_partition_rejects_unknown_mode():
    with pytest.raises(ConfigurationError):
        FaultPlan().partition([["s0"], ["s1"]], at=0.1, heal_at=0.2, mode="eat")


def test_drop_rejects_bad_probability():
    with pytest.raises(ConfigurationError):
        FaultPlan().drop("a", "b", p=1.5, at=0.1, until=0.2)


def test_delay_rejects_negative_extra():
    with pytest.raises(ConfigurationError):
        FaultPlan().delay("a", "b", at=0.1, until=0.2, extra=-0.001)


def test_throttle_rejects_nonpositive_factor():
    with pytest.raises(ConfigurationError):
        FaultPlan().throttle("s0", factor=0.0, at=0.1, until=0.2)
    with pytest.raises(ConfigurationError):
        FaultPlan().throttle("s0", factor=math.nan, at=0.1, until=0.2)


def test_throttle_rejects_infinite_factor():
    """factor=inf used to validate and then blow up mid-run inside the
    scheduler (bandwidth rated/inf == 0); it must fail at construction."""
    with pytest.raises(ConfigurationError):
        FaultPlan().throttle("s0", factor=math.inf, at=0.1, until=0.2)


def test_times_must_be_finite():
    with pytest.raises(ConfigurationError):
        FaultPlan().crash("s0", at=math.inf)
    with pytest.raises(ConfigurationError):
        FaultPlan().pause("s0", at=0.1, resume_at=math.inf)


def test_pause_window_must_be_ordered():
    with pytest.raises(ConfigurationError):
        FaultPlan().pause("s0", at=0.3, resume_at=0.1)


def test_link_profile_validates():
    with pytest.raises(ValueError):
        LinkProfile(dup_p=-0.1).validate()
    with pytest.raises(ValueError):
        LinkProfile(jitter=math.nan).validate()
    assert LinkProfile().is_noop
    assert not LinkProfile(drop_p=0.1).is_noop


# ----------------------------------------------------------------------
# Algebra introspection and application plumbing.
# ----------------------------------------------------------------------


def test_fault_kinds_and_horizon():
    plan = (
        FaultPlan()
        .crash("s0", at=1.4)
        .partition([["s0"], ["s1"]], at=0.1, heal_at=0.6)
        .drop("c0", "s1", p=0.2, at=0.0, until=0.3)
        .duplicate("s1", "s2", p=0.5, at=0.2, until=0.4)
        .delay("c0", "s0", at=0.1, until=0.9, extra=0.001)
        .throttle("s2", factor=4.0, at=0.0, until=0.5)
        .pause("s1", at=0.3, resume_at=0.45)
    )
    assert plan.fault_kinds() == {
        "crash", "partition", "drop", "duplicate", "delay", "throttle", "pause"
    }
    # The stall horizon is the last closing fault window (crashes are
    # not windows: a crash is permanent, not a stall).
    assert plan.stall_horizon() == pytest.approx(0.9)
    assert plan.events == 7


def test_restart_extends_horizon_and_fault_kinds():
    plan = FaultPlan().crash("s0", at=0.2).restart("s0", at=1.7)
    assert plan.fault_kinds() == {"crash", "restart"}
    # A crash..restart pair *is* a fault window: the process is down
    # until the restart (a permanent crash still is not).
    assert plan.stall_horizon() == pytest.approx(1.7)
    assert plan.events == 2


def test_overlapping_pause_windows_rejected():
    plan = FaultPlan().pause("s0", at=0.1, resume_at=0.5)
    with pytest.raises(ConfigurationError):
        plan.pause("s0", at=0.2, resume_at=0.3)
    # Disjoint windows and other processes are fine.
    plan.pause("s0", at=0.6, resume_at=0.7)
    plan.pause("s1", at=0.2, resume_at=0.3)


def test_overlapping_throttle_windows_rejected():
    plan = FaultPlan().throttle("s0", factor=4.0, at=0.1, until=0.5)
    with pytest.raises(ConfigurationError):
        plan.throttle("s0", factor=2.0, at=0.2, until=0.3)
    plan.throttle("s0", factor=2.0, at=0.5, until=0.6)


def test_overlapping_partitions_sharing_a_link_rejected():
    plan = FaultPlan().partition([["s0"], ["s1", "s2"]], at=0.1, heal_at=0.4)
    with pytest.raises(ConfigurationError):
        plan.partition([["s0"], ["s1"]], at=0.2, heal_at=0.5)
    # Overlapping in time but cutting disjoint links is composable.
    plan.partition([["s1"], ["s2"]], at=0.2, heal_at=0.5)


def test_apply_validates_every_named_process():
    env = SimEnv()
    s0 = SimProcess(env, "s0")

    class _FakeNemesis:
        pass

    for plan in (
        FaultPlan().partition([["s0"], ["sTYPO"]], at=0.1, heal_at=0.2),
        FaultPlan().drop("s0", "ghost", p=1.0, at=0.1, until=0.2),
        FaultPlan().throttle("sTYPO", factor=2.0, at=0.1, until=0.2),
        FaultPlan().pause("sTYPO", at=0.1, resume_at=0.2),
    ):
        with pytest.raises(ConfigurationError, match="unknown process"):
            plan.apply(env, {"s0": s0}, nemesis=_FakeNemesis())


def test_link_faults_require_a_nemesis():
    env = SimEnv()
    plan = FaultPlan().drop("a", "b", p=0.5, at=0.1, until=0.2)
    with pytest.raises(ConfigurationError):
        plan.apply(env, {})


def test_crash_only_plan_applies_without_nemesis():
    env = SimEnv()
    process = SimProcess(env, "s0")
    FaultPlan().crash("s0", at=0.1).apply(env, {"s0": process}, nemesis=None)
    env.run_until_idle()
    assert not process.alive
