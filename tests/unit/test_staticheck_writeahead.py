"""Red/green/pragma fixtures for the writeahead.* rule family."""

from __future__ import annotations

from tests.staticheck_helpers import rules_of, run_tree

#: A minimal durable protocol class (defines _maybe_persist, so the rule
#: holds it to the write-ahead discipline); ``pending`` and ``value`` are
#: snapshot-covered attributes.
_HEADER = (
    "class Proto:\n"
    "    def _maybe_persist(self):\n"
    "        pass\n"
    "\n"
    "    def _mark_dirty(self):\n"
    "        self._dirty = True\n"
    "\n"
)


def test_mutation_without_persist_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/proto.py": _HEADER + (
                "    def on_write(self, value):\n"
                "        self.value = value\n"
                "        return [value]\n"
            )
        },
    )
    assert rules_of(violations) == ["writeahead.persist-before-output"]
    assert "Proto.on_write" in violations[0].message


def test_persist_before_return_passes(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/proto.py": _HEADER + (
                "    def on_write(self, value):\n"
                "        self.value = value\n"
                "        self._maybe_persist()\n"
                "        return [value]\n"
            )
        },
    )
    assert violations == []


def test_one_dirty_branch_is_enough(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/proto.py": _HEADER + (
                "    def on_write(self, value):\n"
                "        if value is None:\n"
                "            return []\n"
                "        self.pending.add(value)\n"
                "        if value > 0:\n"
                "            self._maybe_persist()\n"
                "        return [value]\n"
            )
        },
    )
    assert rules_of(violations) == ["writeahead.persist-before-output"]


def test_raise_is_not_an_output(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/proto.py": _HEADER + (
                "    def on_write(self, value):\n"
                "        self.value = value\n"
                "        raise RuntimeError('crashed before replying')\n"
            )
        },
    )
    assert violations == []


def test_dirty_reaches_output_through_helper_calls(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/proto.py": _HEADER + (
                "    def _absorb(self, value):\n"
                "        self.pending.add(value)\n"
                "\n"
                "    def on_write(self, value):\n"
                "        self._absorb(value)\n"
                "        return [value]\n"
            )
        },
    )
    assert rules_of(violations) == ["writeahead.persist-before-output"]


def test_covered_attr_passed_to_mutating_helper(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/proto.py": _HEADER + (
                "    def _advance(self, table, key):\n"
                "        table[key] = True\n"
                "\n"
                "    def on_commit(self, key):\n"
                "        self._advance(self.completed_ops, key)\n"
                "        return []\n"
            )
        },
    )
    assert rules_of(violations) == ["writeahead.persist-before-output"]


def test_private_methods_may_return_dirty(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/proto.py": _HEADER + (
                "    def _stage(self, value):\n"
                "        self.pending.add(value)\n"
                "        return value\n"
                "\n"
                "    def on_write(self, value):\n"
                "        staged = self._stage(value)\n"
                "        self._maybe_persist()\n"
                "        return [staged]\n"
            )
        },
    )
    assert violations == []


def test_non_durable_class_is_out_of_scope(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/plain.py": (
                "class Stats:\n"
                "    def bump(self):\n"
                "        self.pending = 1\n"
                "        return self.pending\n"
            )
        },
    )
    assert violations == []


def test_host_bypass_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/host.py": (
                "def reset(host):\n"
                "    host.proto.pending = set()\n"
            )
        },
    )
    assert rules_of(violations) == ["writeahead.host-bypass"]


def test_host_calling_handler_passes(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/runtime/host.py": (
                "def reset(host):\n"
                "    replies = host.proto.on_reset()\n"
                "    return replies\n"
            )
        },
    )
    assert violations == []


def test_pragma_suppresses_writeahead(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/proto.py": _HEADER + (
                "    # staticheck: allow(writeahead.persist-before-output)"
                " -- replies here carry no durable effect\n"
                "    def on_write(self, value):\n"
                "        self.value = value\n"
                "        return [value]\n"
            )
        },
    )
    assert violations == []
