"""Integration tests: epoch-guarded reconfiguration under partitions.

Scripted (deterministic) scenarios on the simulated cluster with the
imperfect heartbeat detector: a partitioned-but-alive server is wrongly
suspected and excluded by a quorum-installed view, keeps *pausing*
instead of serving possibly-stale reads, and is folded back in after the
heal — with the history checked linearizable end to end.
"""

from repro.analysis.history import History
from repro.analysis.linearizability import check_register_history
from repro.core.config import ProtocolConfig
from repro.runtime.sim_net import SimCluster
from repro.sim.faults import FaultPlan


def build_cluster(num_servers=4, seed=7):
    config = ProtocolConfig(client_timeout=0.25, client_max_retries=40)
    cluster = SimCluster.build(
        num_servers, seed=seed, protocol=config, fd="heartbeat"
    )
    cluster.history = History()
    return cluster


def closed_loop(cluster, host, kind, count, spacing, start, results):
    state = {"n": 0}

    def on_complete(result):
        results.append(result)
        state["n"] += 1
        if state["n"] < count:
            cluster.env.scheduler.schedule(spacing, issue)

    def issue():
        if kind == "write":
            host.write(b"%d:%d" % (host.client_id, state["n"]), on_complete)
        else:
            host.read(on_complete)

    cluster.env.scheduler.schedule(start, issue)


def test_wrongly_suspected_server_is_excluded_and_folded_back():
    cluster = build_cluster()
    results = []
    # Writers on the majority side; a reader bound to the server that
    # will be wrongly suspected.
    closed_loop(cluster, cluster.add_client(home_server=0), "write", 20, 0.12, 0.01, results)
    closed_loop(cluster, cluster.add_client(home_server=3), "read", 20, 0.12, 0.02, results)
    closed_loop(cluster, cluster.add_client(home_server=1), "write", 20, 0.12, 0.03, results)

    plan = FaultPlan()
    plan.partition([["s0", "s1", "s2"], ["s3"]], at=0.4, heal_at=1.1)
    cluster.apply_faults(plan)

    probes = {}

    def probe_mid_partition():
        probes["majority_dead"] = set(cluster.servers[0].proto.ring.dead)
        probes["majority_epoch"] = cluster.servers[0].proto.installed_epoch
        probes["s3_paused"] = cluster.servers[3].proto.paused
        probes["s3_epoch"] = cluster.servers[3].proto.installed_epoch

    # Past partition start + heartbeat timeout + grace + merge round.
    cluster.env.scheduler.schedule_at(1.0, probe_mid_partition)
    cluster.run(until=6.0)

    counters = cluster.env.trace.counters
    assert counters.get("fd.wrong_suspicions", 0) > 0, (
        "a live server must have been wrongly suspected"
    )
    # Mid-partition: the majority excluded s3 in a new epoch while s3 —
    # alive, stale, and on the wrong side — was paused, not serving.
    assert probes["majority_dead"] == {3}
    assert probes["majority_epoch"] >= 1
    assert probes["s3_paused"] is True
    assert probes["s3_epoch"] == 0, "the minority cannot move the epoch"

    # After the heal every server converged on one view, s3 included.
    epochs = {host.proto.installed_epoch for host in cluster.servers.values()}
    assert len(epochs) == 1 and epochs.pop() >= 2
    for host in cluster.servers.values():
        assert not host.proto.paused
        assert not host.proto.rejoining
        assert host.proto.ring.dead == frozenset()

    # Everyone ends with the same committed register state.
    values = {host.proto.tag for host in cluster.servers.values()}
    assert len(values) == 1

    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason
    completed = len(cluster.history.completed())
    assert completed >= 40, f"workload largely completed ({completed}/60)"


def test_rejoined_server_serves_the_write_it_missed():
    """Red/green against the epoch guard: a write committed while the
    wrongly suspected server was excluded must be visible in a read
    served *by that server* after its fold-in."""
    cluster = build_cluster(seed=11)
    outcome = {}

    def write_during_partition():
        host = cluster.add_client(home_server=0)
        host.write(b"committed-without-s3", lambda r: outcome.setdefault("write", r))

    def read_at_rejoiner():
        host = cluster.add_client(home_server=3)
        host.read(lambda r: outcome.setdefault("read", r))

    plan = FaultPlan()
    plan.partition([["s0", "s1", "s2"], ["s3"]], at=0.1, heal_at=1.0)
    cluster.apply_faults(plan)
    # Well inside the partition, after the exclusion installed.
    cluster.env.scheduler.schedule_at(0.7, write_during_partition)
    # After the heal and fold-back settle.
    cluster.env.scheduler.schedule_at(2.5, read_at_rejoiner)
    cluster.run(until=4.0)

    assert outcome["write"].ok
    assert outcome["read"].ok
    assert outcome["read"].value == b"committed-without-s3"
    # And the read really could be served locally by a resumed s3.
    proto = cluster.servers[3].proto
    assert not proto.paused and not proto.rejoining
    assert proto.value == b"committed-without-s3"


def test_symmetric_partition_stalls_both_sides_then_confirms():
    """A 2-2 split leaves no quorum anywhere: both sides refuse to
    install (wrong suspicion costs liveness), and after the heal a
    confirm reconfiguration proves the old view live and resumes it."""
    cluster = build_cluster(seed=3)
    results = []
    closed_loop(cluster, cluster.add_client(home_server=0), "write", 12, 0.2, 0.01, results)
    closed_loop(cluster, cluster.add_client(home_server=2), "read", 12, 0.2, 0.02, results)

    plan = FaultPlan()
    plan.partition([["s0", "s1"], ["s2", "s3"]], at=0.3, heal_at=1.0)
    cluster.apply_faults(plan)

    probes = {}

    def probe():
        probes["stalls"] = cluster.env.trace.counters.get("epoch.quorum_stalls", 0)
        probes["epochs"] = [
            host.proto.installed_epoch for host in cluster.servers.values()
        ]

    cluster.env.scheduler.schedule_at(0.95, probe)
    cluster.run(until=5.0)

    assert probes["stalls"] > 0, "both sides must have refused to install"
    assert probes["epochs"] == [0, 0, 0, 0], "no side installed mid-partition"
    for host in cluster.servers.values():
        assert not host.proto.paused
        assert host.proto.ring.dead == frozenset()
    epochs = {host.proto.installed_epoch for host in cluster.servers.values()}
    assert len(epochs) == 1 and epochs.pop() >= 1, "healed via a confirm install"

    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason
