"""Crash-recovery integration: restart, rejoin, and serve again.

The recovery model under test: a crashed server restarts from its
durable snapshot, announces itself to a live sponsor, and is folded back
into the ring by a reconfiguration whose token traverses the *grown*
ring — so the rejoiner catches up (merged tag/value, merged pending set)
before it serves a single read.  Histories must stay linearizable
through the whole cycle, including a second crash of the same server.
"""

import pytest

from repro import AtomicStorage, SimCluster
from repro.analysis import History, check_register_history
from repro.core.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.sim.faults import FaultPlan


def fast_retry() -> ProtocolConfig:
    return ProtocolConfig(client_timeout=0.08, client_max_retries=30)


def settle(cluster, seconds: float = 1.2) -> None:
    cluster.run(until=cluster.now + seconds)


def test_restarted_server_rejoins_and_serves_committed_reads():
    cluster = SimCluster.build(num_servers=4, seed=21, protocol=fast_retry())
    cluster.history = History()
    storage = AtomicStorage.over(cluster, home_server=0)
    storage.write(b"before-crash")
    cluster.crash_server(1)
    settle(cluster, 0.3)
    storage.write(b"while-down")  # committed without s1
    cluster.restart_server(1)
    settle(cluster)

    proto = cluster.servers[1].proto
    assert not proto.rejoining and not proto.paused, "rejoin must complete"
    # Catch-up happened before serving: the rejoined server holds the
    # write it missed while down.
    assert proto.value == b"while-down"
    # Every survivor folded it back in.
    for sid in (0, 2, 3):
        assert cluster.servers[sid].proto.ring.is_alive(1)
    assert cluster.env.trace.counters["process.restarts"] == 1

    # The rejoined server serves committed reads directly.
    reader = AtomicStorage.over(cluster, home_server=1)
    assert reader.read() == b"while-down"
    storage.write(b"after-rejoin")
    assert reader.read() == b"after-rejoin"
    assert cluster.servers[1].proto.stats_reads_served >= 1

    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_rejoined_server_initiates_writes_again():
    cluster = SimCluster.build(num_servers=3, seed=22, protocol=fast_retry())
    storage = AtomicStorage.over(cluster, home_server=2)
    storage.write(b"seed")
    cluster.crash_server(2)
    settle(cluster, 0.3)
    cluster.restart_server(2)
    settle(cluster)
    # The handle is homed at s2: with s2 rejoined, its next write is
    # initiated *by* the recovered server.
    storage.write(b"initiated-by-rejoiner")
    assert storage.read() == b"initiated-by-rejoiner"
    assert cluster.servers[2].proto.stats_writes_initiated >= 1


def test_restart_during_another_servers_reconfiguration():
    """A server restarts while the ring is still reconfiguring around a
    *different* crash; the history stays linearizable and the rejoiner
    is eventually folded in."""
    cluster = SimCluster.build(num_servers=5, seed=23, protocol=fast_retry())
    cluster.history = History()
    clients = [AtomicStorage.over(cluster, home_server=i) for i in range(5)]
    clients[0].write(b"base")

    cluster.crash_server(1)
    settle(cluster, 0.4)
    # Crash s3 and, before its reconfiguration can settle, restart s1:
    # the rejoin handshake races the crash-triggered merge.
    cluster.crash_server(3)
    cluster.restart_server(1)
    for i in range(6):
        client = clients[i % 5]
        client.write(b"load-%d" % i)
        assert client.read() == b"load-%d" % i
    settle(cluster)

    assert not cluster.servers[1].proto.rejoining
    assert cluster.servers[0].proto.ring.is_alive(1)
    assert not cluster.servers[0].proto.ring.is_alive(3)
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_crash_rejoin_crash_again_is_detected_again():
    cluster = SimCluster.build(num_servers=4, seed=24, protocol=fast_retry())
    cluster.history = History()
    storage = AtomicStorage.over(cluster, home_server=0)
    storage.write(b"v1")
    cluster.crash_server(1)
    settle(cluster, 0.3)
    cluster.restart_server(1)
    settle(cluster)
    assert cluster.servers[0].proto.ring.is_alive(1)

    # Second crash of the same server: the failure detector must fire
    # again (its suspicion was cleared at recovery) and the ring must
    # shrink again.
    cluster.crash_server(1)
    settle(cluster, 0.4)
    assert not cluster.servers[0].proto.ring.is_alive(1)
    storage.write(b"v2")
    assert storage.read() == b"v2"
    assert cluster.env.trace.counters["fd.detections"] >= 2

    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_restart_with_no_survivors_serves_from_snapshot():
    """Everyone died; the restarted server is the whole ring and serves
    the last committed value from its durable snapshot."""
    cluster = SimCluster.build(num_servers=3, seed=25, protocol=fast_retry())
    storage = AtomicStorage.over(cluster, home_server=0)
    storage.write(b"precious")
    for sid in (0, 1, 2):
        cluster.crash_server(sid)
    settle(cluster, 0.3)
    cluster.restart_server(2)
    settle(cluster, 0.3)
    proto = cluster.servers[2].proto
    assert not proto.rejoining and proto.alone
    reader = AtomicStorage.over(cluster, home_server=2)
    assert reader.read() == b"precious"
    reader.write(b"post-apocalypse")
    assert reader.read() == b"post-apocalypse"


def test_fault_plan_crash_restart_pair_end_to_end():
    """The declarative surface: a crash/restart pair in a FaultPlan
    turns into a full recovery cycle, proven by the trace counters."""
    cluster = SimCluster.build(num_servers=4, seed=26, protocol=fast_retry())
    cluster.history = History()
    clients = [AtomicStorage.over(cluster, home_server=i) for i in range(4)]
    plan = FaultPlan().crash("s2", at=0.05).restart("s2", at=0.6)
    cluster.apply_faults(plan)
    for i in range(8):
        client = clients[i % 4]
        client.write(b"op-%d" % i)
        assert client.read() == b"op-%d" % i
    cluster.run(until=max(cluster.now, 2.0))

    counters = cluster.env.trace.counters
    assert counters["process.crashes"] == 1
    assert counters["process.restarts"] == 1
    assert not cluster.servers[2].proto.rejoining
    assert cluster.servers[0].proto.ring.is_alive(2)
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_restart_of_live_server_is_a_noop():
    cluster = SimCluster.build(num_servers=3, seed=27)
    cluster.restart_server(0)
    assert cluster.servers[0].alive
    assert cluster.env.trace.counters.get("process.restarts", 0) == 0


def test_plan_rejects_restart_of_never_crashed_server():
    with pytest.raises(ConfigurationError):
        FaultPlan().restart("s0", at=0.5)


def test_overlapping_crash_recovery_cycles_stay_live():
    """Regression: two overlapping crash-recovery cycles deadlocked the
    ring.

    s3 crashes while s0 is down, so s3's durable snapshot names s0 dead;
    s0 is folded back in before s3 restarts.  Pre-fix, s3's fold-in
    merge unioned its stale snapshot view into the token's dead set and
    kept routing past the long-since-revived s0, so the token's circle
    never closed: every server stayed paused, s3 announced forever, and
    all client operations exhausted their retries.  A rejoiner now
    adopts the token's membership wholesale and contributes no
    exclusions of its own.
    """
    cluster = SimCluster.build(num_servers=4, seed=29, protocol=fast_retry())
    cluster.history = History()
    storage = AtomicStorage.over(cluster, home_server=1)
    storage.write(b"seed")
    cluster.crash_server(0)
    settle(cluster, 0.3)
    cluster.crash_server(3)  # while s0 is down: s3's snapshot has s0 dead
    settle(cluster, 0.3)
    cluster.restart_server(0)
    settle(cluster)  # s0 is folded back in before s3 returns
    for sid in (0, 1, 2):
        assert cluster.servers[sid].proto.ring.is_alive(0)
    cluster.restart_server(3)
    settle(cluster, 1.5)

    for sid, host in cluster.servers.items():
        proto = host.proto
        assert not proto.rejoining, f"s{sid} stuck rejoining"
        assert not proto.paused, f"s{sid} stuck paused"
        assert proto.ring.is_alive(0) and proto.ring.is_alive(3)
    storage.write(b"after-heal")
    assert storage.read() == b"after-heal"

    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_restart_before_first_persist_keeps_initial_value():
    """A server that crashes before anything dirtied its snapshot store
    restores from ``None`` — and must come back with the cluster's
    configured ``initial_value``, not an empty register (reads before
    and after the restart would otherwise disagree)."""
    cluster = SimCluster.build(
        num_servers=1, seed=30, protocol=fast_retry(), initial_value=b"preloaded"
    )
    storage = AtomicStorage.over(cluster)
    assert storage.read() == b"preloaded"
    cluster.crash_server(0)
    cluster.restart_server(0)
    settle(cluster, 0.2)
    assert storage.read() == b"preloaded"
