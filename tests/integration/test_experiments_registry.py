"""Smoke tests for the experiment registry (quick mode).

Every figure-regenerating function must run end-to-end and produce rows
of the declared width; the heavier shape assertions live in
``benchmarks/``.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    run_ablation_fairness,
    run_fig1,
    run_fig3a,
    run_fig4,
    run_sec4,
)


def test_registry_covers_every_paper_artifact():
    assert {"fig1", "sec4", "fig3a", "fig3b", "fig3c", "fig3d", "fig4"} <= set(
        EXPERIMENTS
    )
    assert len([k for k in EXPERIMENTS if k.startswith("abl")]) >= 5


def test_fig1_rows_shape():
    headers, rows = run_fig1(servers=(3,), rounds=60)
    assert len(rows) == 1 and len(rows[0]) == len(headers)


def test_sec4_rows_shape():
    headers, rows = run_sec4(servers=(2, 3), rounds=60)
    assert [row[0] for row in rows] == [2, 3]
    assert all(len(row) == len(headers) for row in rows)


def test_fig3a_quick_mode():
    headers, rows = run_fig3a(servers=(2, 3), quick=True)
    assert [row[0] for row in rows] == [2, 3]
    assert rows[1][1] > rows[0][1], "more servers, more total reads"


def test_fig4_rows_shape():
    headers, rows = run_fig4(servers=(2, 4), samples=3)
    assert rows[1][2] > rows[0][2], "write latency grows with n"


def test_ablation_fairness_rows():
    headers, rows = run_ablation_fairness(num_servers=3, quick=True)
    labels = [row[0] for row in rows]
    assert labels == ["default", "no fairness", "no piggyback"]


def test_bench_main_subset(capsys):
    from repro.bench.__main__ import main

    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "tput/round" in out


def test_bench_main_rejects_unknown(capsys):
    from repro.bench.__main__ import main

    assert main(["not-an-experiment"]) == 2
