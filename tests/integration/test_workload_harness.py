"""Integration tests for the workload generator and benchmark harness."""

import pytest

from repro.bench.harness import (
    measure_cluster,
    repeat_throughput_point,
    run_latency_point,
    run_throughput_point,
)
from repro.runtime.sim_net import SimCluster
from repro.workload.generator import LoadDriver, WorkloadSpec
from repro.workload.scenarios import read_only_scenario, write_only_scenario


def test_load_driver_counts_only_measurement_window():
    cluster = SimCluster.build(num_servers=2, seed=41, initial_value=b"\0" * 4096)
    driver = LoadDriver(cluster, WorkloadSpec(1, 0, 2, 2, 4096))
    driver.start()
    cluster.run(until=0.05)
    assert driver.stats["read"].operations == 0, "warmup must not count"
    driver.begin_measurement()
    cluster.run(until=0.15)
    driver.end_measurement()
    counted = driver.stats["read"].operations
    assert counted > 0
    cluster.run(until=0.2)
    assert driver.stats["read"].operations == counted, "after window must not count"


def test_load_driver_spawns_declared_clients():
    cluster = SimCluster.build(num_servers=3, seed=42)
    driver = LoadDriver(cluster, WorkloadSpec(2, 1, 4, 8, 1024))
    # 3 servers x (2 reader machines x 4 + 1 writer machine x 8).
    assert driver.logical_clients == 3 * (2 * 4 + 1 * 8)


def test_written_values_are_unique():
    cluster = SimCluster.build(num_servers=2, seed=43)
    driver = LoadDriver(cluster, WorkloadSpec(0, 1, 2, 2, 64))
    values = {driver._next_value(1) for _ in range(100)}
    assert len(values) == 100


def test_throughput_point_read_only_regime():
    point = run_throughput_point(2, read_only_scenario(), warmup=0.1, window=0.2)
    assert point.write_ops == 0
    assert 85.0 < point.read_mbps_per_server < 96.0
    assert point.read_latency.count == point.read_ops


def test_throughput_point_write_only_regime():
    point = run_throughput_point(3, write_only_scenario(), warmup=0.1, window=0.2)
    assert point.read_ops == 0
    assert 80.0 < point.write_mbps < 96.0


def test_repeat_point_averages_runs():
    point = repeat_throughput_point(
        2, read_only_scenario(), runs=2, warmup=0.1, window=0.15
    )
    assert 85.0 < point.read_mbps_per_server < 96.0


def test_latency_point_shape():
    small = run_latency_point(2, samples=4)
    large = run_latency_point(6, samples=4)
    assert small.read_ms == pytest.approx(large.read_ms, rel=0.05)
    assert large.write_ms > 2.0 * small.write_ms


def test_measure_cluster_reports_cluster_size():
    cluster = SimCluster.build(num_servers=4, seed=44, initial_value=b"\0" * 4096)
    point = measure_cluster(cluster, read_only_scenario(), warmup=0.05, window=0.1)
    assert point.num_servers == 4
    assert point.topology == "dual"
