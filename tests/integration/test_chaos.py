"""Integration tests for the randomized chaos harness.

These pin the acceptance behaviour: randomized fault schedules against
the core protocol pass the linearizability gate, the whole baseline zoo
survives its gentle profile, fault coverage is demonstrable through
trace counters, and profile/protocol mismatches are rejected.
"""

import pytest

from repro.chaos import (
    CORE_PROFILE,
    GENTLE_PROFILE,
    TARGETS,
    generate_schedule,
    run_schedule,
)
from repro.chaos.__main__ import main as chaos_main
from repro.errors import ConfigurationError


def test_core_survives_a_batch_of_randomized_schedules():
    exercised = set()
    for index in range(8):
        schedule = generate_schedule(seed=0, index=index)
        result = run_schedule(schedule, "core")
        assert result.linearizable, (
            f"schedule {schedule.describe()}: {result.reason}"
        )
        assert result.ops_completed > 0
        exercised |= result.exercised
    assert {"crash", "partition"} <= exercised, exercised


def test_schedules_are_deterministic_data():
    a = generate_schedule(seed=3, index=5)
    b = generate_schedule(seed=3, index=5)
    assert a == b and a.plan.events == b.plan.events
    c = generate_schedule(seed=3, index=6)
    assert (a.plan.events, a.writers, a.readers, a.ops_per_client) != (
        c.plan.events, c.writers, c.readers, c.ops_per_client
    ) or a.cluster_seed != c.cluster_seed


@pytest.mark.parametrize("protocol", ["abd", "chain", "tob"])
def test_atomic_baselines_survive_gentle_chaos(protocol):
    profile = TARGETS[protocol].profile
    for index in range(3):
        schedule = generate_schedule(seed=1, index=index, profile=profile)
        result = run_schedule(schedule, protocol)
        assert result.linearizable, (
            f"{protocol} schedule {schedule.describe()}: {result.reason}"
        )


def test_naive_baseline_never_fails_the_gate_but_may_violate():
    for index in range(4):
        schedule = generate_schedule(seed=2, index=index, profile=GENTLE_PROFILE)
        result = run_schedule(schedule, "naive")
        assert result.ok, "naive violations are expected anomalies, not failures"


def test_baselines_reject_core_profile_schedules():
    schedule = generate_schedule(seed=0, index=0, profile=CORE_PROFILE)
    with pytest.raises(ConfigurationError):
        run_schedule(schedule, "abd")


def test_unknown_protocol_rejected():
    with pytest.raises(ConfigurationError):
        run_schedule(generate_schedule(seed=0, index=0), "raft")


def test_core_tolerates_the_full_stall_horizon():
    """Timeout rule: the generated client timeout always clears the last
    fault window, so retries cannot race stalled pre-writes."""
    for index in range(10):
        schedule = generate_schedule(seed=4, index=index)
        assert schedule.config.client_timeout > schedule.plan.stall_horizon()
        assert schedule.deadline > schedule.workload_span


def test_stalled_runs_fail_the_gate():
    """A vacuously-linearizable empty history must not pass: the gate
    requires the workload to have made progress."""
    schedule = generate_schedule(seed=0, index=0)
    result = run_schedule(schedule, "core")
    assert result.ops_required > 0
    assert result.progressed and result.ok
    import dataclasses

    stalled = dataclasses.replace(result, ops_completed=0)
    assert stalled.linearizable and not stalled.ok, (
        "zero completed ops is a liveness failure even though the empty "
        "history is trivially linearizable"
    )
    assert "STALLED" in stalled.describe()


def test_cli_small_batch_exits_zero(capsys):
    assert chaos_main(["--runs", "3", "--seed", "0", "-q"]) == 0
    out = capsys.readouterr().out
    assert "3/3 schedules passed" in out
