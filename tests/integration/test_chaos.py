"""Integration tests for the randomized chaos harness.

These pin the acceptance behaviour: randomized fault schedules against
the core protocol pass the linearizability gate, the whole baseline zoo
survives its gentle profile, fault coverage is demonstrable through
trace counters, and profile/protocol mismatches are rejected.
"""

import pytest

from repro.chaos import (
    CORE_PROFILE,
    GENTLE_PROFILE,
    TARGETS,
    generate_schedule,
    run_schedule,
)
from repro.chaos.schedule import AGGRESSIVE_CLIENT_TIMEOUT
from repro.chaos.__main__ import main as chaos_main
from repro.errors import ConfigurationError


def test_core_survives_a_batch_of_randomized_schedules():
    exercised = set()
    for index in range(8):
        schedule = generate_schedule(seed=0, index=index)
        result = run_schedule(schedule, "core")
        assert result.linearizable, (
            f"schedule {schedule.describe()}: {result.reason}"
        )
        assert result.ops_completed > 0
        exercised |= result.exercised
    assert {"crash", "partition"} <= exercised, exercised


def test_schedules_are_deterministic_data():
    a = generate_schedule(seed=3, index=5)
    b = generate_schedule(seed=3, index=5)
    assert a == b and a.plan.events == b.plan.events
    c = generate_schedule(seed=3, index=6)
    assert (a.plan.events, a.writers, a.readers, a.ops_per_client) != (
        c.plan.events, c.writers, c.readers, c.ops_per_client
    ) or a.cluster_seed != c.cluster_seed


@pytest.mark.parametrize("protocol", ["abd", "chain", "tob"])
def test_atomic_baselines_survive_gentle_chaos(protocol):
    profile = TARGETS[protocol].profile
    for index in range(3):
        schedule = generate_schedule(seed=1, index=index, profile=profile)
        result = run_schedule(schedule, protocol)
        assert result.linearizable, (
            f"{protocol} schedule {schedule.describe()}: {result.reason}"
        )


def test_naive_baseline_never_fails_the_gate_but_may_violate():
    for index in range(4):
        schedule = generate_schedule(seed=2, index=index, profile=GENTLE_PROFILE)
        result = run_schedule(schedule, "naive")
        assert result.ok, "naive violations are expected anomalies, not failures"


def test_baselines_reject_core_profile_schedules():
    schedule = generate_schedule(seed=0, index=0, profile=CORE_PROFILE)
    with pytest.raises(ConfigurationError):
        run_schedule(schedule, "abd")


def test_unknown_protocol_rejected():
    with pytest.raises(ConfigurationError):
        run_schedule(generate_schedule(seed=0, index=0), "raft")


def test_client_timeout_races_the_stall_horizon():
    """Lifted envelope: the client timeout is aggressive — *below* the
    stall horizon whenever a fault window is scheduled — so retries race
    stalled operations and the dedup machinery is what keeps runs safe.
    (The old generator pinned the timeout past the horizon.)"""
    raced = 0
    for index in range(10):
        schedule = generate_schedule(seed=4, index=index)
        assert schedule.config.client_timeout == AGGRESSIVE_CLIENT_TIMEOUT
        assert schedule.deadline > schedule.workload_span
        raced += schedule.plan.stall_horizon() > schedule.config.client_timeout
    assert raced > 0, "no schedule put the timeout inside a fault window"


def test_ring_loss_now_schedulable_with_crashes():
    """Lifted envelope: the generator may combine probabilistic ring
    loss with crashes (previously forbidden: a lost pre-write left a
    zombie pending entry the crash merge would resurrect), and ring loss
    may hit any ring link, not just successor links."""
    combined = 0
    non_successor = 0
    for index in range(200):
        schedule = generate_schedule(seed=7, index=index)
        plan = schedule.plan
        ring_drops = [
            fault for fault in plan.link_faults
            if fault.profile.drop_p and fault.src.startswith("s")
            and fault.dst.startswith("s")
        ]
        if ring_drops and plan.crashes:
            combined += 1
        for fault in ring_drops:
            succ = (int(fault.src[1:]) + 1) % schedule.num_servers
            if fault.dst != f"s{succ}":
                non_successor += 1
    assert combined > 0, "ring loss never drawn alongside a crash"
    assert non_successor > 0, "ring loss only ever drawn on successor links"


def test_ring_loss_combined_with_crash_stays_linearizable():
    """The previously-unschedulable combination, as one fixed plan: lose
    ring frames on a non-successor link *and* crash a server while the
    workload runs.  The reliable session layer must retransmit through
    the loss (provable via the trace), and the run must stay
    linearizable and make progress."""
    import dataclasses

    from repro.sim.faults import FaultPlan

    base = generate_schedule(seed=11, index=0)
    plan = (
        FaultPlan()
        .drop("s0", "s1", p=0.35, at=0.02, until=0.9)
        .drop("s2", "s0", p=0.25, at=0.05, until=0.8)  # non-successor link
        .crash("s3", at=0.4)
    )
    schedule = dataclasses.replace(
        base, plan=plan, workload_span=1.0, deadline=6.0,
        writers=3, readers=3, ops_per_client=6,
    )
    result = run_schedule(schedule, "core")
    assert result.linearizable, result.reason
    assert result.progressed, (
        f"only {result.ops_completed}/{result.ops_required} required ops"
    )
    assert result.retransmits > 0, (
        "the session layer never retransmitted; the loss windows cannot "
        "have been exercised"
    )
    assert "crash" in result.exercised and "drop" in result.exercised


def test_batch_proves_session_layer_fired():
    """Acceptance: across a seed-0 batch, trace counters must show the
    session layer actually retransmitting and suppressing duplicates."""
    retransmits = 0
    dups = 0
    for index in range(8):
        result = run_schedule(generate_schedule(seed=0, index=index), "core")
        assert result.ok, result.describe()
        retransmits += result.retransmits
        dups += result.dups_suppressed
    assert retransmits > 0
    assert dups > 0


def test_stalled_runs_fail_the_gate():
    """A vacuously-linearizable empty history must not pass: the gate
    requires the workload to have made progress."""
    schedule = generate_schedule(seed=0, index=0)
    result = run_schedule(schedule, "core")
    assert result.ops_required > 0
    assert result.progressed and result.ok
    import dataclasses

    stalled = dataclasses.replace(result, ops_completed=0)
    assert stalled.linearizable and not stalled.ok, (
        "zero completed ops is a liveness failure even though the empty "
        "history is trivially linearizable"
    )
    assert "STALLED" in stalled.describe()


def test_cli_small_batch_exits_zero(capsys):
    assert chaos_main(["--runs", "3", "--seed", "0", "-q"]) == 0
    out = capsys.readouterr().out
    assert "3/3 schedules passed" in out


def test_restart_schedules_are_generated_and_pass():
    """The core profile schedules crash/restart pairs; a schedule that
    contains one must pass the gate with the restart *proven* in-trace
    (the ``process.restarts`` counter backs the coverage report)."""
    found = None
    for index in range(30):
        schedule = generate_schedule(seed=0, index=index)
        if schedule.plan.restarts:
            found = schedule
            break
    assert found is not None, "core profile must generate restart schedules"
    # Interval validity by construction: each restart strictly follows
    # its crash.
    crash_times = {c.process_name: c.time for c in found.plan.crashes}
    for restart in found.plan.restarts:
        assert restart.time > crash_times[restart.process_name]
    # The restart window extends the stall horizon and thus the
    # workload span: operations demonstrably overlap the recovery.
    assert found.workload_span >= max(r.time for r in found.plan.restarts)

    result = run_schedule(found, "core")
    assert result.ok, f"{found.describe()}: {result.reason}"
    assert "restart" in result.exercised


def test_restart_coverage_accumulates_across_acceptance_batch():
    """Across a 12-run slice of the seed-0 batch (the smoke size), the
    restart kind fires at least once — the CLI coverage gate relies on
    this."""
    exercised = set()
    for index in range(12):
        result = run_schedule(generate_schedule(seed=0, index=index), "core")
        assert result.ok
        exercised |= result.exercised
    assert "restart" in exercised


def test_partition_profile_schedules_always_cut_and_run_heartbeat():
    """Every partition-profile schedule carries at least one partition
    window, restarts every crash, and runs under the imperfect
    detector's fd tag."""
    from repro.chaos import PARTITION_PROFILE, PROFILES

    assert PROFILES["partition"] is PARTITION_PROFILE
    assert PARTITION_PROFILE.fd == "heartbeat"
    for index in range(10):
        schedule = generate_schedule(0, index, 4, PARTITION_PROFILE)
        assert schedule.plan.partitions, "partition-heavy means always cut"
        crashed = {c.process_name for c in schedule.plan.crashes}
        restarted = {r.process_name for r in schedule.plan.restarts}
        assert crashed == restarted, "every crash restarts in this profile"


def test_partition_profile_slice_passes_with_wrong_suspicion_proof():
    """A slice of the acceptance batch: all runs linearizable, and the
    wrongly-suspected-but-alive hazard demonstrably exercised in-trace
    (the fd.wrong_suspicions counter the CLI gate requires)."""
    from repro.chaos import PARTITION_PROFILE

    wrong = 0
    exercised = set()
    for index in range(6):
        schedule = generate_schedule(0, index, 4, PARTITION_PROFILE)
        result = run_schedule(schedule, "core")
        assert result.ok, f"{schedule.describe()}: {result.reason}"
        wrong += result.wrong_suspicions
        exercised |= result.exercised
    assert wrong > 0, "no run wrongly suspected a live server"
    assert "partition" in exercised


def test_partition_profile_mixes_hold_and_drop_modes():
    from repro.chaos import PARTITION_PROFILE

    modes = set()
    for index in range(20):
        schedule = generate_schedule(0, index, 4, PARTITION_PROFILE)
        modes |= {p.mode for p in schedule.plan.partitions}
    assert modes == {"hold", "drop"}


def test_required_ops_floor_follows_the_schedules_profile():
    """The liveness floor is the *schedule's*: a loss-free gentle batch
    run against the core protocol must require every operation to
    complete, not inherit the core profile's lossy half-floor."""
    schedule = generate_schedule(seed=1, index=0, profile=GENTLE_PROFILE)
    result = run_schedule(schedule, "core")
    assert result.ops_required == schedule.num_clients * schedule.ops_per_client
    assert result.ok, result.describe()
