"""Chaos gate coverage for ring-frame batching.

The batching knob defaults on, so the chaos-checked path *is* the
batched path.  These tests pin that down: core- and scale-profile runs
pass their gates with batching enabled and demonstrably exercise the
batched wire path (``reliable.batched_frames`` in the trace), the
``--no-batch`` escape hatch really degenerates to one-message frames,
and batching on/off leaves the gate verdict unchanged on the same
schedules.
"""

import dataclasses

from repro.chaos import CORE_PROFILE, SCALE_PROFILE, generate_schedule, run_schedule
from repro.chaos.__main__ import main as chaos_main


def _unbatched(schedule):
    return dataclasses.replace(
        schedule, config=dataclasses.replace(schedule.config, batch_max_messages=1)
    )


def test_core_profile_gates_green_with_batching_enabled():
    """A handful of core schedules at the default (batched) config: all
    pass, and at least one run proves multi-segment frames went over
    the wire."""
    batched_frames = 0
    for index in range(4):
        schedule = generate_schedule(0, index, 4, CORE_PROFILE)
        assert schedule.config.batch_max_messages > 1, (
            "chaos schedules must inherit the batching default — "
            "otherwise the gated path is not the benchmarked path"
        )
        result = run_schedule(schedule, "core")
        assert result.ok, result.describe()
        batched_frames += result.batched_frames
        assert result.batched_messages >= result.batched_frames * 2
    assert batched_frames > 0, "no run ever coalesced a frame"


def test_scale_profile_gates_green_with_batching_enabled():
    """A shrunken scale run (sharded block store) under the default
    batched config: per-block tagged gate green, batched frames seen."""
    base = generate_schedule(0, 0, 4, SCALE_PROFILE)
    small = dataclasses.replace(base, writers=4, readers=6, ops_per_client=12)
    assert small.config.batch_max_messages > 1
    result = run_schedule(small, "sharded")
    assert result.ok, result.describe()
    assert result.tag_coverage == 1.0
    assert result.batched_frames > 0, "sharded ring never coalesced a frame"


def test_gate_verdict_is_batching_invariant():
    """The same schedule passes with and without batching — batching is
    a framing optimisation, not a behaviour change the gate can see."""
    schedule = generate_schedule(3, 1, 4, CORE_PROFILE)
    batched = run_schedule(schedule, "core")
    unbatched = run_schedule(_unbatched(schedule), "core")
    assert batched.ok, batched.describe()
    assert unbatched.ok, unbatched.describe()
    assert unbatched.batched_frames == 0


def test_no_batch_flag_disables_the_batched_path():
    schedule = _unbatched(generate_schedule(0, 0, 4, CORE_PROFILE))
    result = run_schedule(schedule, "core")
    assert result.ok, result.describe()
    assert result.batched_frames == 0
    assert result.batched_messages == 0


def test_cli_no_batch_exits_zero():
    assert chaos_main(["--runs", "2", "--seed", "0", "--no-batch", "-q"]) == 0
