"""Chaos at benchmark scale: the sharded block store under the core
fault envelope, gated per block by the tagged checker.

These pin the acceptance behaviour of ``--profile scale``: schedules are
benchmark-sized (8+ blocks, thousands of operations), runs are gated
through ``check_tagged_history`` per block at 100% tag coverage, and the
gate is *not* vacuous — untagged completions and blockless operations
fail it.
"""

import dataclasses

import pytest

from repro.analysis.history import History, Operation
from repro.chaos import PROFILES, SCALE_PROFILE, generate_schedule, run_schedule
from repro.chaos.runner import _gate_sharded
from repro.core.tags import Tag
from repro.errors import ConfigurationError


def test_scale_profile_schedules_are_benchmark_sized():
    assert PROFILES["scale"] is SCALE_PROFILE
    assert SCALE_PROFILE.fd == "perfect", "scale runs the core fault envelope"
    for index in range(10):
        schedule = generate_schedule(0, index, 4, SCALE_PROFILE)
        assert schedule.num_blocks >= 8
        assert schedule.num_clients * schedule.ops_per_client >= 5000
        assert schedule.client_machines >= 1
        assert schedule.plan.crashes, "every scale schedule crashes a server"
        # Round-robin home assignment covers every block with writers
        # and readers, so no per-block history is checked vacuously.
        assert schedule.writers >= schedule.num_blocks
        assert schedule.readers >= schedule.num_blocks


def test_scale_run_gates_every_block_at_full_coverage():
    """A shrunken scale run (same machinery, smaller totals, for suite
    speed): passes, checks every block, and proves 100% tag coverage."""
    base = generate_schedule(0, 0, 4, SCALE_PROFILE)
    small = dataclasses.replace(base, writers=4, readers=6, ops_per_client=12)
    result = run_schedule(small, "sharded")
    assert result.ok, result.describe()
    assert result.blocks_checked == small.num_blocks
    assert result.tag_coverage == 1.0
    assert result.ops_completed > 0


def test_sharded_schedules_rejected_for_single_register_protocols():
    schedule = generate_schedule(0, 0, 4, SCALE_PROFILE)
    with pytest.raises(ConfigurationError):
        run_schedule(schedule, "core")


def test_sharded_gate_fails_on_untagged_completion():
    """The vacuous-pass hazard, end to end: one completed untagged op
    fails its block's gate even though the tag order alone is clean."""
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0), block=0),
        Operation(2, "read", b"a", 2, 3, tag=None, block=0),
        Operation(3, "write", b"b", 0, 1, tag=Tag(1, 0), block=1),
    ])
    ok, reason, blocks_checked, coverage = _gate_sharded(history)
    assert not ok
    assert "block 0" in reason and "coverage" in reason
    assert coverage == pytest.approx(2 / 3)


def test_sharded_gate_fails_on_blockless_operation():
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0), block=None),
    ])
    ok, reason, blocks_checked, coverage = _gate_sharded(history)
    assert not ok and "block key" in reason


def test_sharded_gate_checks_blocks_independently():
    """A tag inversion confined to block 1 is reported against block 1."""
    history = History.of([
        Operation(1, "write", b"a", 0, 1, tag=Tag(1, 0), block=0),
        Operation(2, "read", b"a", 2, 3, tag=Tag(1, 0), block=0),
        Operation(3, "read", b"y", 0, 1, tag=Tag(2, 0), block=1),
        Operation(4, "read", b"x", 2, 3, tag=Tag(1, 0), block=1),
    ])
    ok, reason, blocks_checked, coverage = _gate_sharded(history)
    assert not ok and reason.startswith("block 1")
    assert blocks_checked == 2  # block 0 passed, block 1 failed


def test_scale_profile_cli_batch_exits_zero():
    from repro.chaos.__main__ import main as chaos_main

    assert chaos_main(["--profile", "scale", "--runs", "1", "--seed", "0",
                       "-q"]) == 0


def test_empty_sharded_history_is_trivially_covered():
    ok, reason, blocks_checked, coverage = _gate_sharded(History())
    assert ok and blocks_checked == 0 and coverage == 1.0


def test_explicit_sharded_protocol_with_scale_profile_is_accepted():
    from repro.chaos.__main__ import main as chaos_main

    assert chaos_main(["--protocols", "sharded", "--profile", "scale",
                       "--runs", "1", "--seed", "0", "-q"]) == 0


def test_sharded_protocol_rejects_non_scale_profiles():
    from repro.chaos.__main__ import main as chaos_main

    with pytest.raises(SystemExit):
        chaos_main(["--protocols", "sharded", "--profile", "partition",
                    "--runs", "1", "-q"])
