"""Integration tests for elastic placement: multi-ring block stores,
live migration, the abort path, and crash recovery of whole rings."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.placement import MigrationPlan
from repro.core.sharded import BlockStore
from repro.errors import ConfigurationError, PlacementStaleError
from repro.sim.counters import MIGRATION_ABORTED, SHARD_REDIRECTS

RINGS = [(0, 1), (2, 3)]


def _build(num_blocks=2, rebalance=False, seed=60, **kwargs):
    kwargs.setdefault(
        "protocol", ProtocolConfig(client_timeout=0.08, client_max_retries=40)
    )
    return BlockStore.build(
        num_servers=4, num_blocks=num_blocks, seed=seed,
        rings=RINGS, rebalance=rebalance, **kwargs,
    )


def test_multi_ring_round_trip():
    """Blocks placed on different rings serve independently: each ring
    only hosts (and only circulates tokens for) its own blocks."""
    store = _build(num_blocks=4, seed=61)
    for i in range(4):
        store.write_block(i, b"ring-%d" % i)
    for i in range(4):
        assert store.read_block(i) == b"ring-%d" % i
    # Placement is real: ring 0's servers host blocks 0-1 only.
    assert sorted(store.cluster.servers[0].protos) == [0, 1]
    assert sorted(store.cluster.servers[2].protos) == [2, 3]


def test_elastic_cluster_needs_two_rings():
    with pytest.raises(ConfigurationError):
        BlockStore.build(num_servers=2, num_blocks=2, rings=[(0, 1)])


def test_rebalancer_migrates_hot_blocks_and_data_survives():
    """Under a hot-block workload on a packed placement the rebalancer
    migrates live: written data survives the snapshot handoff, clients
    chase redirects to the new ring, and the table converges off ring 0."""
    store = _build(
        num_blocks=4, rebalance=True, seed=62,
        pack=True, rebalance_interval=0.01, min_load=2.0,
    )
    cluster = store.cluster
    assert cluster.placement.blocks_on(0) == (0, 1, 2, 3)
    for i in range(4):
        store.write_block(i, b"gen0-%d" % i)
    # Hammer block 0: every sample shows ring 0 hot and ring 1 idle.
    for spin in range(30):
        store.write_block(0, b"hot-%d" % spin)
    rebalancer = cluster.rebalancer
    assert rebalancer.completed >= 1, "no migration ever completed"
    assert cluster.placement.version == rebalancer.completed
    assert len(cluster.placement.blocks_on(0)) < 4, "nothing left ring 0"
    # Every block — migrated or not — still serves its latest value.
    assert store.read_block(0) == b"hot-29"
    for i in range(1, 4):
        assert store.read_block(i) == b"gen0-%d" % i
    # The facade client learned the moves through redirect chasing.
    assert cluster.env.trace.counters.get(SHARD_REDIRECTS, 0) >= 1


def test_split_leaves_dominant_block_alone_on_its_ring():
    """A dominant hot block is split: co-residents are evicted one
    migration at a time until it owns ring 0 outright."""
    store = _build(
        num_blocks=3, rebalance=True, seed=63,
        pack=True, rebalance_interval=0.01, min_load=2.0,
    )
    cluster = store.cluster
    for i in range(3):
        store.write_block(i, b"seed-%d" % i)
    for spin in range(60):
        store.write_block(0, b"dom-%d" % spin)
    assert cluster.rebalancer.splits >= 1, "no split decision fired"
    assert cluster.placement.blocks_on(0) == (0,), (
        "the dominant block should end up alone on its ring"
    )
    assert store.read_block(0) == b"dom-59"


def test_destination_crash_mid_migration_aborts_cleanly():
    """A destination-member crash aborts the attempt: staged state is
    discarded, the table is untouched and the source ring resumes."""
    store = _build(rebalance=True, seed=64, rebalance_first_delay=500.0)
    cluster = store.cluster
    store.write_block(0, b"precious")
    rebalancer = cluster.rebalancer
    rebalancer._start(MigrationPlan(block=0, source=0, dest=1))
    assert rebalancer._active is not None, "migration should be in flight"
    cluster.crash_server(2)  # destination member dies mid-attempt
    assert rebalancer._active is None
    assert rebalancer.aborted == 1 and rebalancer.completed == 0
    assert cluster.env.trace.counters.get(MIGRATION_ABORTED) == 1
    # The table never moved; the source ring serves as if nothing happened.
    assert cluster.placement.ring_of(0) == 0
    assert store.read_block(0) == b"precious"


def test_migration_timeout_aborts_when_destination_ring_is_gone():
    """If the transfer can never be staged (whole destination ring down
    after the attempt started) the timeout expires the attempt."""
    store = _build(
        rebalance=True, seed=65,
        rebalance_first_delay=500.0, migration_timeout=0.2,
    )
    cluster = store.cluster
    store.write_block(0, b"kept")
    rebalancer = cluster.rebalancer
    rebalancer._start(MigrationPlan(block=0, source=0, dest=1))
    cluster.crash_server(3)  # abort via the crash listener
    assert rebalancer.aborted == 1
    cluster.run(until=cluster.now + 0.5)
    assert cluster.placement.ring_of(0) == 0
    assert store.read_block(0) == b"kept"


def test_stale_client_binding_raises_placement_stale_error():
    """Red path of the typed error: a client whose redirect chase can
    never converge (the placement entry keeps pointing at a ring that
    refuses the block) exhausts its budget and surfaces
    PlacementStaleError instead of a generic timeout."""
    store = _build(num_blocks=2, seed=66)
    store.write_block(1, b"green")  # green path: placed reads just work
    assert store.read_block(1) == b"green"
    for sid in RINGS[1]:
        store.cluster.servers[sid].drop_block(1)
    with pytest.raises(PlacementStaleError):
        store.read_block(1)
    # The other block is untouched by the poisoned one.
    store.write_block(0, b"still-fine")
    assert store.read_block(0) == b"still-fine"


def test_restart_respects_placement_after_migration():
    """A source member that was down across a migration restarts into
    the *current* table: the migrated-away block is not resurrected from
    its stale local snapshot."""
    store = _build(num_blocks=4, rebalance=True, seed=67,
                   rebalance_first_delay=500.0)
    cluster = store.cluster
    store.write_block(0, b"mig-me")
    store.write_block(1, b"stays")
    cluster.crash_server(0)
    cluster.run(until=cluster.now + 0.2)
    rebalancer = cluster.rebalancer
    rebalancer._start(MigrationPlan(block=0, source=0, dest=1))
    cluster.run_until(lambda: rebalancer.completed == 1)
    assert cluster.placement.ring_of(0) == 1
    cluster.restart_server(0)
    cluster.run(until=cluster.now + 1.0)
    host = cluster.servers[0]
    assert 0 not in host.protos and 0 not in host._stores
    assert sorted(host.protos) == [1], (
        "only the block still placed on ring 0 should be rebuilt"
    )
    assert store.read_block(0) == b"mig-me"
    assert store.read_block(1) == b"stays"


def test_ring_member_resumes_alone_only_if_it_crashed_last():
    """Crash-order recovery: when every member of a block's ring has
    crashed, only the member that crashed *last* may restart straight
    into serving — it alone saw every completed write.  An
    earlier-crashed member restarting first must come back rejoining
    and wait, or it would serve (and migration would propagate) a stale
    copy of the block."""
    store = _build(num_blocks=2, seed=68)
    cluster = store.cluster
    store.write_block(0, b"both-up")
    cluster.crash_server(1)
    cluster.run(until=cluster.now + 0.2)
    store.write_block(0, b"only-s0")  # completes on s0 alone
    cluster.crash_server(0)  # whole ring down; s0 crashed last
    cluster.restart_server(1)  # the *stale* member restarts first
    cluster.run(until=cluster.now + 0.3)
    proto = cluster.servers[1].protos[0]
    assert proto.rejoining, (
        "the earlier-crashed member must wait for the last-crashed one, "
        "not resume alone with a stale snapshot"
    )
    cluster.restart_server(0)  # freshest copy returns and sponsors s1
    cluster.run(until=cluster.now + 1.0)
    assert store.read_block(0) == b"only-s0"
    # Both members settled: nobody stuck rejoining.
    for sid in (0, 1):
        assert not cluster.servers[sid].protos[0].rejoining
