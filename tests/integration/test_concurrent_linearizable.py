"""Atomicity under concurrency: recorded histories must check out.

These are the paper's correctness property exercised end-to-end: many
clients, overlapping reads and writes, with and without crashes; every
recorded history must be linearizable (value-based check) and
tag-consistent (tag-based check).
"""

import pytest

from repro.analysis import History, check_register_history, check_tagged_history
from repro.core.config import ProtocolConfig
from repro.runtime.sim_net import SimCluster


def drive_mixed_load(
    cluster: SimCluster,
    num_writers: int,
    num_readers: int,
    ops_per_client: int,
    crash_at: dict[float, int] | None = None,
) -> None:
    """Closed-loop mixed load; returns once every client finished."""
    done_counts = {"left": num_writers + num_readers}

    def spawn(host, kind: str, client_seq: list[int]) -> None:
        def on_complete(result):
            if client_seq[0] >= ops_per_client:
                done_counts["left"] -= 1
                return
            client_seq[0] += 1
            issue()

        def issue():
            if kind == "write":
                value = b"%d:%d" % (host.client_id, client_seq[0])
                host.write(value + b"." * 16, on_complete)
            else:
                host.read(on_complete)

        issue()

    for i in range(num_writers):
        spawn(cluster.add_client(home_server=i % cluster.config.num_servers),
              "write", [0])
    for i in range(num_readers):
        spawn(cluster.add_client(home_server=i % cluster.config.num_servers),
              "read", [0])
    if crash_at:
        for time, victim in crash_at.items():
            cluster.env.scheduler.schedule_at(time, cluster.crash_server, victim)
    cluster.run_until(lambda: done_counts["left"] == 0)


@pytest.mark.parametrize("num_servers,seed", [(2, 1), (3, 2), (5, 3)])
def test_mixed_load_failure_free_is_linearizable(num_servers, seed):
    cluster = SimCluster.build(num_servers=num_servers, seed=seed)
    cluster.history = History()
    drive_mixed_load(cluster, num_writers=4, num_readers=6, ops_per_client=12)
    cluster.history.close()
    assert len(cluster.history.completed()) == 10 * 13
    ok, reason = check_register_history(cluster.history)
    assert ok, reason
    ok, reason = check_tagged_history(cluster.history)
    assert ok, reason


@pytest.mark.parametrize("seed", [4, 5, 6])
def test_mixed_load_with_crash_is_linearizable(seed):
    config = ProtocolConfig(client_timeout=0.1, client_max_retries=30)
    cluster = SimCluster.build(num_servers=4, seed=seed, protocol=config)
    cluster.history = History()
    drive_mixed_load(
        cluster,
        num_writers=3,
        num_readers=5,
        ops_per_client=10,
        crash_at={0.004: 1},
    )
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_mixed_load_with_two_crashes_is_linearizable():
    config = ProtocolConfig(client_timeout=0.1, client_max_retries=40)
    cluster = SimCluster.build(num_servers=5, seed=9, protocol=config)
    cluster.history = History()
    drive_mixed_load(
        cluster,
        num_writers=3,
        num_readers=4,
        ops_per_client=8,
        crash_at={0.003: 2, 0.05: 4},
    )
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason
