"""Integration tests for the real asyncio TCP runtime (localhost).

The same protocol code as the simulator, over real sockets — including
the paper's connection-break failure detector and client failover.
"""

import asyncio

import pytest

from repro.core.config import ProtocolConfig
from repro.errors import StorageUnavailableError
from repro.runtime.asyncio_net import AsyncCluster


def run(coro):
    return asyncio.run(coro)


def test_write_then_read_across_clients():
    async def scenario():
        cluster = AsyncCluster(3)
        await cluster.start()
        try:
            a = cluster.client(home_server=0)
            b = cluster.client(home_server=2)
            await a.write(b"hello")
            assert await b.read() == b"hello"
            await b.write(b"world")
            assert await a.read() == b"world"
            await a.close()
            await b.close()
        finally:
            await cluster.stop()

    run(scenario())


def test_many_interleaved_ops():
    async def scenario():
        cluster = AsyncCluster(4)
        await cluster.start()
        try:
            clients = [cluster.client(home_server=i) for i in range(4)]
            for i in range(12):
                writer = clients[i % 4]
                await writer.write(b"gen-%d" % i)
                reader = clients[(i + 1) % 4]
                assert await reader.read() == b"gen-%d" % i
            for c in clients:
                await c.close()
        finally:
            await cluster.stop()

    run(scenario())


def test_concurrent_writers_converge():
    async def scenario():
        cluster = AsyncCluster(3)
        await cluster.start()
        try:
            clients = [cluster.client(home_server=i) for i in range(3)]
            await asyncio.gather(*(c.write(b"w%d" % i) for i, c in enumerate(clients)))
            values = await asyncio.gather(*(c.read() for c in clients))
            assert len(set(values)) == 1, f"diverged: {values}"
            for c in clients:
                await c.close()
        finally:
            await cluster.stop()

    run(scenario())


def test_crash_failover_and_recovery():
    async def scenario():
        config = ProtocolConfig(client_timeout=0.3, client_max_retries=8)
        cluster = AsyncCluster(4, config)
        await cluster.start()
        try:
            client = cluster.client(home_server=1)
            await client.write(b"before")
            await cluster.crash_server(1)  # the client's home server
            await asyncio.sleep(0.05)
            await asyncio.wait_for(client.write(b"after"), timeout=10.0)
            other = cluster.client(home_server=3)
            assert await other.read() == b"after"
            await client.close()
            await other.close()
        finally:
            await cluster.stop()

    run(scenario())


def test_all_servers_down_raises():
    async def scenario():
        config = ProtocolConfig(client_timeout=0.1, client_max_retries=2)
        cluster = AsyncCluster(2, config)
        await cluster.start()
        client = cluster.client()
        await client.write(b"v")
        await cluster.stop()
        with pytest.raises(StorageUnavailableError):
            await asyncio.wait_for(client.write(b"w"), timeout=10.0)
        await client.close()

    run(scenario())


def test_crashed_server_restarts_and_rejoins(tmp_path):
    """Crash → restart from the file-backed snapshot → rejoin → the
    recovered server itself serves the writes it missed while down."""
    async def scenario():
        config = ProtocolConfig(client_timeout=0.3, client_max_retries=20)
        cluster = AsyncCluster(3, config, durable_dir=str(tmp_path))
        await cluster.start()
        try:
            client = cluster.client(home_server=0)
            await client.write(b"before")
            await cluster.crash_server(1)
            await asyncio.sleep(0.2)
            await asyncio.wait_for(client.write(b"while-down"), timeout=10.0)

            await cluster.restart_server(1)
            for _ in range(100):  # rejoin completes within the retry cadence
                if not cluster.nodes[1].proto.rejoining:
                    break
                await asyncio.sleep(0.1)
            assert not cluster.nodes[1].proto.rejoining
            # Caught up before serving: the missed write is installed.
            assert cluster.nodes[1].proto.value == b"while-down"
            # And the snapshot on disk survives the process in spirit:
            # it records the recovered state.
            assert cluster.nodes[1].durable.load().value == b"while-down"

            rejoined = cluster.client(home_server=1)
            assert await asyncio.wait_for(rejoined.read(), timeout=10.0) == b"while-down"
            await asyncio.wait_for(rejoined.write(b"after-rejoin"), timeout=10.0)
            assert await client.read() == b"after-rejoin"
            await client.close()
            await rejoined.close()
        finally:
            await cluster.stop()

    run(scenario())


def test_restart_with_no_survivors_resolves_alone(tmp_path):
    """Every server died; the restarted one finds nothing but refused
    connections, concludes nobody is alive (the paper's failure model)
    and resumes alone from its snapshot — paced announcements, no spin."""
    async def scenario():
        config = ProtocolConfig(client_timeout=0.3, client_max_retries=20)
        cluster = AsyncCluster(3, config, durable_dir=str(tmp_path))
        await cluster.start()
        client = cluster.client(home_server=0)
        await client.write(b"precious")
        await client.close()
        await cluster.stop()

        await cluster.restart_server(1)
        for _ in range(100):
            if not cluster.nodes[1].proto.rejoining:
                break
            await asyncio.sleep(0.1)
        proto = cluster.nodes[1].proto
        assert not proto.rejoining and proto.alone
        assert proto.value == b"precious"
        survivor = cluster.client(home_server=1)
        assert await asyncio.wait_for(survivor.read(), timeout=10.0) == b"precious"
        await asyncio.wait_for(survivor.write(b"post"), timeout=10.0)
        assert await survivor.read() == b"post"
        await survivor.close()
        await cluster.stop()

    run(scenario())


def test_heartbeat_mode_serves_reads_and_writes():
    """Basic service under the imperfect detector: no faults, no churn."""

    async def scenario():
        cluster = AsyncCluster(3, fd="heartbeat")
        await cluster.start()
        try:
            a = cluster.client(home_server=0)
            b = cluster.client(home_server=1)
            await a.write(b"hb-hello")
            assert await b.read() == b"hb-hello"
            await b.write(b"hb-world")
            assert await a.read() == b"hb-world"
            await a.close()
            await b.close()
        finally:
            await cluster.stop()

    run(scenario())


def test_heartbeat_mode_crash_detected_and_excluded_by_quorum():
    """A crash under fd="heartbeat" is detected by silence, not by a
    connection break: the survivors install a quorum-backed view that
    excludes the dead server (epoch moves) and keep serving."""

    async def scenario():
        from repro.fd.heartbeat import HeartbeatConfig

        hb = HeartbeatConfig(
            period=0.05, timeout=0.3, check_interval=0.05, propose_grace=0.15
        )
        config = ProtocolConfig(client_timeout=0.5, client_max_retries=30)
        cluster = AsyncCluster(3, config=config, fd="heartbeat", heartbeat=hb)
        await cluster.start()
        try:
            client = cluster.client(home_server=0)
            await client.write(b"before-crash")
            await cluster.crash_server(2)

            async def excluded():
                survivors = [cluster.nodes[0].proto, cluster.nodes[1].proto]
                while not all(
                    p.installed_epoch >= 1 and 2 in p.ring.dead and not p.paused
                    for p in survivors
                ):
                    await asyncio.sleep(0.05)

            await asyncio.wait_for(excluded(), timeout=10.0)
            await client.write(b"after-crash")
            assert await client.read() == b"after-crash"
            await client.close()
        finally:
            await cluster.stop()

    run(scenario())


def test_heartbeat_mode_restart_rejoins_through_sponsor():
    """A restarted server under the imperfect detector announces itself
    and is folded back in by a revived-marked quorum reconfiguration; it
    then serves the latest committed value, not its stale snapshot."""

    async def scenario():
        from repro.fd.heartbeat import HeartbeatConfig

        hb = HeartbeatConfig(
            period=0.05, timeout=0.3, check_interval=0.05, propose_grace=0.15
        )
        config = ProtocolConfig(client_timeout=0.5, client_max_retries=30)
        cluster = AsyncCluster(3, config=config, fd="heartbeat", heartbeat=hb)
        await cluster.start()
        try:
            client = cluster.client(home_server=0)
            await client.write(b"epoch-0-value")
            await cluster.crash_server(2)

            async def excluded():
                while not all(
                    2 in cluster.nodes[i].proto.ring.dead for i in (0, 1)
                ):
                    await asyncio.sleep(0.05)

            await asyncio.wait_for(excluded(), timeout=10.0)
            await client.write(b"written-while-down")
            await cluster.restart_server(2)

            async def rejoined():
                proto = cluster.nodes[2].proto
                while proto.rejoining or proto.paused:
                    await asyncio.sleep(0.05)

            await asyncio.wait_for(rejoined(), timeout=10.0)
            # The rejoiner serves the write it missed, straight away.
            direct = cluster.client(home_server=2)
            assert await direct.read() == b"written-while-down"
            epochs = {cluster.nodes[i].proto.installed_epoch for i in range(3)}
            assert len(epochs) == 1 and epochs.pop() >= 2
            await client.close()
            await direct.close()
        finally:
            await cluster.stop()

    run(scenario())
