"""End-to-end tests of the public AtomicStorage API over the simulator."""

import pytest

from repro import AtomicStorage, SimCluster
from repro.errors import StorageUnavailableError


def test_write_then_read():
    cluster = SimCluster.build(num_servers=3, seed=1)
    storage = AtomicStorage.over(cluster)
    storage.write(b"v1")
    assert storage.read() == b"v1"


def test_initial_value_readable():
    cluster = SimCluster.build(num_servers=3, seed=1, initial_value=b"genesis")
    storage = AtomicStorage.over(cluster)
    assert storage.read() == b"genesis"


def test_reads_via_any_server_see_latest_write():
    cluster = SimCluster.build(num_servers=5, seed=2)
    writer = AtomicStorage.over(cluster, home_server=0)
    readers = [AtomicStorage.over(cluster, home_server=i) for i in range(5)]
    writer.write(b"broadcasted")
    for reader in readers:
        assert reader.read() == b"broadcasted"


def test_last_writer_wins_across_clients():
    cluster = SimCluster.build(num_servers=4, seed=3)
    a = AtomicStorage.over(cluster, home_server=0)
    b = AtomicStorage.over(cluster, home_server=2)
    a.write(b"from-a")
    b.write(b"from-b")
    assert a.read() == b"from-b"
    assert b.read() == b"from-b"


def test_many_sequential_writes():
    cluster = SimCluster.build(num_servers=3, seed=4)
    storage = AtomicStorage.over(cluster)
    for i in range(20):
        storage.write(b"value-%03d" % i)
    assert storage.read() == b"value-019"


def test_write_requires_bytes():
    cluster = SimCluster.build(num_servers=2, seed=5)
    storage = AtomicStorage.over(cluster)
    with pytest.raises(TypeError):
        storage.write("not bytes")


def test_single_server_cluster_works():
    cluster = SimCluster.build(num_servers=1, seed=6)
    storage = AtomicStorage.over(cluster)
    storage.write(b"alone")
    assert storage.read() == b"alone"


def test_all_servers_crashed_fails_cleanly():
    from repro.core.config import ProtocolConfig

    cluster = SimCluster.build(
        num_servers=2,
        seed=7,
        protocol=ProtocolConfig(client_timeout=0.05, client_max_retries=3),
    )
    storage = AtomicStorage.over(cluster)
    storage.write(b"v")
    cluster.crash_server(0)
    cluster.crash_server(1)
    with pytest.raises(StorageUnavailableError):
        storage.write(b"w")
