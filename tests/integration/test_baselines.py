"""Integration tests for the baseline protocols.

Each baseline must function (complete operations, converge) on the
simulated cluster; the naive one must additionally *fail* atomicity in
the staged read-inversion scenario — that failure is the paper's
motivation for the pre-write phase.
"""

import pytest

from repro.analysis import History, Operation, check_register_history
from repro.baselines import (
    build_abd_cluster,
    build_chain_cluster,
    build_naive_cluster,
    build_tob_cluster,
)
from repro.baselines.naive import NaiveServer, Push
from repro.core.messages import ClientRead, ClientWrite, OpId


def run_ops(cluster, ops=6):
    """A writer at s0 and a reader at the last server, alternating."""
    n = cluster.config.num_servers
    writer = cluster.add_client(home_server=0)
    reader = cluster.add_client(home_server=n - 1)
    for i in range(ops):
        done = []
        writer.write(b"value-%d" % i, done.append)
        cluster.run_until(lambda: bool(done))
        assert done[0].ok
        got = []
        reader.read(got.append)
        cluster.run_until(lambda: bool(got))
        assert got[0].ok
        assert got[0].value == b"value-%d" % i, got[0]


@pytest.mark.parametrize(
    "build",
    [build_abd_cluster, build_chain_cluster, build_tob_cluster, build_naive_cluster],
    ids=["abd", "chain", "tob", "naive"],
)
def test_baseline_sequential_ops(build):
    run_ops(build(3, seed=21))


@pytest.mark.parametrize(
    "build", [build_abd_cluster, build_chain_cluster, build_tob_cluster],
    ids=["abd", "chain", "tob"],
)
def test_baseline_concurrent_history_linearizable(build):
    """The three serious baselines are atomic in failure-free runs."""
    cluster = build(3, seed=22)
    cluster.history = History()
    counts = {"left": 4}

    def spawn(host, kind):
        state = {"i": 0}

        def on_complete(result):
            state["i"] += 1
            if state["i"] >= 8:
                counts["left"] -= 1
                return
            issue()

        def issue():
            if kind == "write":
                host.write(b"%d:%d" % (host.client_id, state["i"]), on_complete)
            else:
                host.read(on_complete)

        issue()

    for i, kind in enumerate(["write", "write", "read", "read"]):
        spawn(cluster.add_client(home_server=i % 3), kind)
    cluster.run_until(lambda: counts["left"] == 0)
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, f"{build.__name__}: {reason}"


def test_naive_read_inversion_anomaly():
    """The staged anomaly of the paper's Section 3, on the sans-I/O
    naive servers directly: while a write-all is propagating, a reader
    at an updated server sees the new value, then a reader at a
    not-yet-updated server sees the old one -> not linearizable."""
    servers = [NaiveServer(i, 3) for i in range(3)]
    op = OpId(1, 0)
    # Writer starts at s0: installs locally, pushes to s1/s2 (delayed).
    effects = servers[0].on_client_message(1, ClientWrite(op, b"new"))
    pushes = [e for e in effects if hasattr(e, "message") and isinstance(e.message, Push)]
    assert len(pushes) == 2

    history = History()
    history.invoke(0.0, 1, "w", "write", b"new")  # still in flight

    # Reader A at the origin sees the new value immediately.
    (reply_a,) = servers[0].on_client_message(2, ClientRead(OpId(2, 0)))
    history.invoke(1.0, 2, "ra", "read", None)
    history.respond(2.0, 2, "ra", reply_a.message.value)

    # Reader B at a server the push has not reached sees the old value.
    (reply_b,) = servers[2].on_client_message(3, ClientRead(OpId(3, 0)))
    history.invoke(3.0, 3, "rb", "read", None)
    history.respond(4.0, 3, "rb", reply_b.message.value)

    assert reply_a.message.value == b"new"
    assert reply_b.message.value == b""
    history.close()
    ok, _reason = check_register_history(history)
    assert not ok, "the naive algorithm must exhibit read inversion"


def test_naive_full_cluster_can_violate_under_staged_timing():
    """Same anomaly through the full simulator: read the origin right
    after the write is issued, then read a far server before the push
    lands there."""
    cluster = build_naive_cluster(4, seed=23)
    cluster.history = History()
    writer = cluster.add_client(home_server=0)
    reader_near = cluster.add_client(home_server=0)
    reader_far = cluster.add_client(home_server=3)

    done: list = []
    writer.write(b"new", done.append)
    near: list = []
    reader_near.read(near.append)
    cluster.run_until(lambda: bool(near))
    far: list = []
    reader_far.read(far.append)
    cluster.run_until(lambda: bool(far))
    cluster.run_until(lambda: bool(done))
    cluster.history.close()

    if near[0].value == b"new" and far[0].value == b"":
        ok, _ = check_register_history(cluster.history)
        assert not ok, "checker must flag the inversion"
