"""Fine-grained tests of the simulator runtime glue.

These pin behaviours that the throughput results depend on: NIC-exact
accounting of every message, per-connection reply fairness, virtual
clients sharing one machine NIC, client-reply routing, and the reliable
session layer under every unicast.
"""

import pytest

from repro import AtomicStorage, SimCluster
from repro.core.config import ProtocolConfig
from repro.core.messages import payload_size
from repro.errors import ConfigurationError
from repro.sim.faults import FaultPlan


def test_dual_topology_separates_ring_and_client_traffic():
    cluster = SimCluster.build(num_servers=2, seed=51)
    storage = AtomicStorage.over(cluster)
    storage.write(b"x" * 1000)
    s0 = cluster.servers[0]
    assert s0.nic_ring is not s0.nic_client
    assert s0.nic_ring.tx.messages_total > 0, "pre-writes used the server net"
    trace = cluster.env.trace.counters
    assert trace["srv.unicasts"] > 0 and trace["cli.unicasts"] > 0


def test_shared_topology_uses_one_nic():
    cluster = SimCluster.build(num_servers=2, topology="shared", seed=52)
    storage = AtomicStorage.over(cluster)
    storage.write(b"y" * 1000)
    s0 = cluster.servers[0]
    assert s0.nic_ring is s0.nic_client
    assert "lan.unicasts" in cluster.env.trace.counters


def test_wire_bytes_accounting_matches_messages():
    cluster = SimCluster.build(num_servers=2, seed=53)
    storage = AtomicStorage.over(cluster)
    storage.write(b"z" * 2000)
    # Every unicast charged its wire cost: totals are plausible and
    # strictly exceed the raw payload bytes (framing overhead).
    trace = cluster.env.trace.counters
    assert trace["srv.wire_bytes"] > 2 * 2000  # pre-write crossed 2 links
    assert trace["cli.wire_bytes"] > 2000  # request + ack


def test_virtual_clients_share_one_machine():
    cluster = SimCluster.build(num_servers=2, seed=54)
    host = cluster.add_client(home_server=0)
    v1 = host.add_virtual_client()
    v2 = host.add_virtual_client()
    assert cluster.client_name(v1) == host.name == cluster.client_name(v2)
    results = []
    host.write(b"a" * 100, results.append, client_id=v1)
    host.write(b"b" * 100, results.append, client_id=v2)
    cluster.run_until(lambda: len(results) == 2)
    assert all(r.ok for r in results)
    # Both logical clients transmitted through the same NIC.
    assert host.nic.tx.messages_total >= 2


def test_crashed_client_replies_are_dropped():
    cluster = SimCluster.build(num_servers=2, seed=55)
    host = cluster.add_client(home_server=0)
    results = []
    host.write(b"w" * 64, results.append)
    # Let the request reach the server, then crash before the ack.
    cluster.run(until=0.0005)
    assert cluster.servers[0].proto.stats_writes_initiated == 1
    host.crash()
    cluster.run(until=0.5)
    assert results == [], "a crashed client never observes completions"
    # The servers still committed the write (write-all semantics).
    reader = AtomicStorage.over(cluster, home_server=1)
    assert reader.read() == b"w" * 64


def test_unknown_home_server_rejected():
    cluster = SimCluster.build(num_servers=2, seed=56)
    with pytest.raises(ConfigurationError):
        cluster.add_client(home_server=9)


def test_ring_tx_serialises_one_message_at_a_time():
    cluster = SimCluster.build(num_servers=3, seed=57)
    storage = AtomicStorage.over(cluster)
    for i in range(5):
        storage.write(bytes([i]) * 500)
    s0 = cluster.servers[0]
    elapsed = cluster.now
    # The tx port can never have been busy for more than wall time.
    assert s0.nic_ring.tx.busy_time <= elapsed + 1e-9


def test_payload_of_respects_custom_sizers():
    from repro.runtime.sim_net import _payload_of
    from repro.baselines.abd import StoreAck

    assert _payload_of(StoreAck((1, 2))) == StoreAck((1, 2)).payload_bytes()
    from repro.core.messages import ClientRead, OpId

    assert _payload_of(ClientRead(OpId(1, 1))) == payload_size(ClientRead(OpId(1, 1)))


def test_reliable_layer_retransmits_through_a_drop_window():
    """A ring drop window loses frames; the session layer must resend
    them (trace counter) and the write must still complete — exactly the
    scenario the old chaos envelope forbade the generator to draw."""
    cluster = SimCluster.build(
        num_servers=3, seed=58,
        protocol=ProtocolConfig(client_timeout=0.5, client_max_retries=20),
    )
    client = cluster.add_client(home_server=0)
    plan = FaultPlan().drop("s0", "s1", p=1.0, at=0.0, until=0.2)
    cluster.apply_faults(plan)
    results = []
    client.write(b"through the storm" * 10, results.append)
    cluster.run_until(lambda: bool(results))
    assert results[0].ok
    counters = cluster.env.trace.counters
    assert counters["nemesis.drops"] > 0, "the window must actually drop"
    assert counters["reliable.retransmits"] > 0
    reader = AtomicStorage.over(cluster, home_server=2)
    assert reader.read() == b"through the storm" * 10


def test_reliable_layer_suppresses_nemesis_duplicates():
    """Frames duplicated by the nemesis arrive once at the protocol."""
    cluster = SimCluster.build(num_servers=2, seed=59)
    client = cluster.add_client(home_server=0)
    plan = FaultPlan().duplicate("c0", "s0", p=1.0, at=0.0, until=5.0,
                                 symmetric=True)
    cluster.apply_faults(plan)
    results = []
    client.write(b"once only", results.append)
    cluster.run_until(lambda: bool(results))
    assert results[0].ok
    assert cluster.env.trace.counters["nemesis.dup_deliveries"] > 0
    assert cluster.env.trace.counters["reliable.dups_suppressed"] > 0


def test_sessions_to_a_crashed_server_are_abandoned():
    """The failure detector firing resets every session touching the
    dead server, cancelling retransmission timers — the simulator's TCP
    reset.  The run then quiesces instead of retransmitting forever."""
    cluster = SimCluster.build(
        num_servers=3, seed=60,
        protocol=ProtocolConfig(client_timeout=0.2, client_max_retries=10),
    )
    client = cluster.add_client(home_server=0)
    results = []
    client.write(b"pre-crash", results.append)
    cluster.run_until(lambda: bool(results))
    cluster.crash_server(0)
    client.write(b"post-crash", results.append)
    # Must terminate: abandoned sessions stop rearming timers.
    cluster.env.run_until_idle(max_events=200_000)
    assert len(results) == 2 and results[1].ok
    for (local, peer), session in cluster.reliable.sessions.items():
        if "s0" in (local, peer):
            assert session.in_flight == 0


def test_late_sends_to_a_dead_server_still_quiesce():
    """Regression: abandon_peer runs once at FD-notify, but a client
    retry can round-robin back onto the dead server *afterwards*,
    re-filling the session.  The retransmit timer must notice the peer
    is dead and reset instead of re-arming at rto_max forever — else
    run_until_idle never returns after any crash-bearing run."""
    cluster = SimCluster.build(
        num_servers=3, seed=62,
        protocol=ProtocolConfig(client_timeout=0.2, client_max_retries=6),
    )
    client = cluster.add_client(home_server=0)
    cluster.crash_server(0)
    cluster.run(until=0.05)  # detection fired; abandon sweep is done
    results = []
    client.write(b"after the sweep", results.append)
    cluster.env.run_until_idle(max_events=100_000)
    assert results and results[0].ok
    for (local, peer), session in cluster.reliable.sessions.items():
        assert session.in_flight == 0, (local, peer)


def test_reliable_false_restores_the_raw_fabric():
    """Unit-test escape hatch: a cluster built with reliable=False moves
    bare protocol messages with no session envelope or ack traffic."""
    cluster = SimCluster.build(num_servers=2, seed=61, reliable=False)
    assert cluster.reliable is None
    storage = AtomicStorage.over(cluster)
    storage.write(b"raw")
    assert storage.read() == b"raw"
    counters = cluster.env.trace.counters
    assert "reliable.retransmits" not in counters
    assert "reliable.acks" not in counters
