"""Resilience tests over the full simulated cluster (network + FD + timers).

The paper's resilience claim: the storage stays available as long as one
server survives, and clients simply retry at another server when theirs
crashes.
"""

import pytest

from repro import AtomicStorage, SimCluster
from repro.analysis import History, check_register_history
from repro.core.config import ProtocolConfig
from repro.sim.faults import FaultPlan


def fast_retry() -> ProtocolConfig:
    return ProtocolConfig(client_timeout=0.08, client_max_retries=20)


def test_survives_crash_of_every_server_but_one():
    cluster = SimCluster.build(num_servers=5, seed=11, protocol=fast_retry())
    cluster.history = History()
    storage = AtomicStorage.over(cluster, home_server=4)
    storage.write(b"before-any-crash")
    for round_no, victim in enumerate([0, 1, 2, 3]):
        cluster.crash_server(victim)
        cluster.run(until=cluster.now + 0.25)
        value = b"epoch-%d" % round_no
        storage.write(value)
        assert storage.read() == value
    assert cluster.alive_servers() == [4]
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_client_fails_over_when_home_server_dies():
    cluster = SimCluster.build(num_servers=3, seed=12, protocol=fast_retry())
    storage = AtomicStorage.over(cluster, home_server=0)
    storage.write(b"v1")
    cluster.crash_server(0)
    # The client does not know; its next op times out and retries at s1.
    storage.write(b"v2")
    assert storage.read() == b"v2"
    assert storage.client.protos[storage.client.client_id].stats_retries >= 1


def test_value_written_before_crash_survives():
    cluster = SimCluster.build(num_servers=4, seed=13, protocol=fast_retry())
    writer = AtomicStorage.over(cluster, home_server=1)
    writer.write(b"precious")
    cluster.crash_server(1)
    cluster.run(until=cluster.now + 0.2)
    for sid in cluster.alive_servers():
        reader = AtomicStorage.over(cluster, home_server=sid)
        assert reader.read() == b"precious"


def test_crash_while_write_in_flight_write_completes_or_retries():
    cluster = SimCluster.build(num_servers=4, seed=14, protocol=fast_retry())
    cluster.history = History()
    storage = AtomicStorage.over(cluster, home_server=2)
    results = []
    storage.client.write(b"racing", results.append)
    # Crash the origin while the pre-write is circulating.
    cluster.run(until=cluster.now + 0.0005)
    cluster.crash_server(2)
    cluster.run_until(lambda: bool(results))
    assert results[0].ok, "the retried write must eventually complete"
    reader = AtomicStorage.over(cluster, home_server=3)
    assert reader.read() == b"racing"
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_fault_plan_driven_cascade_under_load():
    cluster = SimCluster.build(num_servers=5, seed=15, protocol=fast_retry())
    cluster.history = History()
    clients = [AtomicStorage.over(cluster, home_server=i) for i in range(5)]
    FaultPlan.sequential(["s0", "s2"], first_at=0.05, spacing=0.15).apply(
        cluster.env, {h.name: h for h in cluster.servers.values()}
    )
    for i in range(8):
        client = clients[(i * 3) % 5]
        client.write(b"load-%d" % i)
        assert client.read() == b"load-%d" % i
    cluster.run(until=max(cluster.now, 0.5))
    assert sorted(cluster.alive_servers()) == [1, 3, 4]
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason


def test_detection_delay_is_respected():
    cluster = SimCluster.build(num_servers=3, seed=16, detection_delay=0.02)
    cluster.crash_server(1)
    cluster.run(until=cluster.now + 0.01)
    assert cluster.servers[0].proto.ring.dead == set(), "not yet detected"
    cluster.run(until=cluster.now + 0.05)
    assert cluster.servers[0].proto.ring.dead == {1}


def test_idle_simulation_resets_half_open_op_state():
    """Regression: when the scheduler goes idle mid-operation (fully
    crashed ring, client machine down before its retry timer fires),
    AtomicStorage._run used to raise while leaving the client protocol's
    in-flight op state behind — the next operation on the same handle
    then exploded on the phantom outstanding op instead of starting
    fresh."""
    from repro.errors import StorageUnavailableError

    cluster = SimCluster.build(
        num_servers=2, seed=18,
        protocol=ProtocolConfig(client_timeout=0.05, client_max_retries=3),
    )
    storage = AtomicStorage.over(cluster)
    storage.write(b"v")
    for sid in (0, 1):
        cluster.crash_server(sid)  # the whole ring is gone
    # The client machine dies right after issuing: its retry timer fires
    # into a dead host and re-arms nothing, so the simulation goes idle
    # with the operation half-open.
    cluster.env.scheduler.schedule(0.01, storage.client.crash)
    with pytest.raises(StorageUnavailableError, match="idle"):
        storage.write(b"lost")

    # The op state must have been reset: after a restart the same handle
    # fails *cleanly* (retries exhausted against a dead ring) instead of
    # raising ProtocolError("... already has Op(...) in flight").
    storage.client.restart()
    with pytest.raises(StorageUnavailableError, match="write failed"):
        storage.write(b"after-reset")
