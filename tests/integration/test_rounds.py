"""Integration tests for the round model: Figure 1 and Section 4."""

import pytest

from repro.rounds import RoundStorage, run_figure1
from repro.rounds.tob_round import RoundTobStorage


def test_figure1_paper_numbers():
    a = run_figure1("A", num_servers=3, rounds=90)
    b = run_figure1("B", num_servers=3, rounds=90)
    assert a.first_latency == b.first_latency == 4
    assert a.throughput_per_round == pytest.approx(1.0, abs=0.05)
    assert b.throughput_per_round == pytest.approx(3.0, abs=0.05)


def test_figure1_scaling():
    assert run_figure1("B", num_servers=6, rounds=90).throughput_per_round == pytest.approx(6.0, abs=0.1)
    assert run_figure1("A", num_servers=7, rounds=120).throughput_per_round < 1.5


def test_figure1_rejects_unknown_algorithm():
    with pytest.raises(ValueError):
        run_figure1("C")


@pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
def test_sec4_write_latency_formula(n):
    assert RoundStorage(n).isolated_write_latency() == 2 * n + 2


@pytest.mark.parametrize("n", [2, 5, 8])
def test_sec4_read_latency_constant(n):
    assert RoundStorage(n).isolated_read_latency() == 2


@pytest.mark.parametrize("n", [2, 4, 8])
def test_sec4_write_throughput_one_per_round(n):
    assert RoundStorage(n).saturated_write_throughput(150) == pytest.approx(1.0, abs=0.05)


@pytest.mark.parametrize("n", [2, 4, 8])
def test_sec4_read_throughput_n_per_round(n):
    assert RoundStorage(n).saturated_read_throughput(150) == pytest.approx(n, rel=0.05)


def test_sec4_contended_reads_stay_near_n():
    for n in (2, 4, 8):
        contended = RoundStorage(n).saturated_read_throughput(150, with_writes=True)
        assert contended > n - 1.05


def test_round_storage_correctness_smoke():
    """The round adapter drives the *real* protocol: state must converge."""
    storage = RoundStorage(4)
    op = storage.issue_write(1, b"rounds")
    storage.run(4 * 4 + 8)
    assert storage.latency_of(op) == 10
    for server in storage.servers:
        assert server.value == b"rounds"


def test_tob_round_model_throughput_is_one():
    for n in (2, 4, 8):
        assert RoundTobStorage(n).saturated_throughput(200) == pytest.approx(1.0, abs=0.06)
