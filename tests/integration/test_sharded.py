"""Integration tests for the multi-register block store."""

import pytest

from repro.core.sharded import BlockStore
from repro.errors import ConfigurationError


def test_blocks_are_independent():
    store = BlockStore.build(num_servers=3, num_blocks=4, seed=31)
    store.write_block(0, b"zero")
    store.write_block(2, b"two")
    assert store.read_block(0) == b"zero"
    assert store.read_block(1) == b"", "untouched block keeps initial value"
    assert store.read_block(2) == b"two"


def test_overwrites_within_block():
    store = BlockStore.build(num_servers=3, num_blocks=2, seed=32)
    for i in range(5):
        store.write_block(1, b"gen-%d" % i)
    assert store.read_block(1) == b"gen-4"
    assert store.read_block(0) == b""


def test_many_blocks_round_trip():
    store = BlockStore.build(num_servers=4, num_blocks=16, seed=33)
    for i in range(16):
        store.write_block(i, b"payload-%02d" % i)
    for i in range(16):
        assert store.read_block(i) == b"payload-%02d" % i


def test_block_bounds_checked():
    store = BlockStore.build(num_servers=2, num_blocks=2, seed=34)
    with pytest.raises(ConfigurationError):
        store.read_block(2)
    with pytest.raises(ConfigurationError):
        store.write_block(-1, b"")
    with pytest.raises(ConfigurationError):
        BlockStore.build(num_servers=2, num_blocks=0)


def test_blocks_survive_crash():
    from repro.core.config import ProtocolConfig

    store = BlockStore.build(
        num_servers=4,
        num_blocks=4,
        seed=35,
        protocol=ProtocolConfig(client_timeout=0.1, client_max_retries=20),
    )
    for i in range(4):
        store.write_block(i, b"pre-crash-%d" % i)
    store.cluster.crash_server(1)
    store.cluster.run(until=store.cluster.now + 0.2)
    for i in range(4):
        assert store.read_block(i) == b"pre-crash-%d" % i
    store.write_block(2, b"post-crash")
    assert store.read_block(2) == b"post-crash"
