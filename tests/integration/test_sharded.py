"""Integration tests for the multi-register block store."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.sharded import BlockStore
from repro.errors import ConfigurationError


def test_blocks_are_independent():
    store = BlockStore.build(num_servers=3, num_blocks=4, seed=31)
    store.write_block(0, b"zero")
    store.write_block(2, b"two")
    assert store.read_block(0) == b"zero"
    assert store.read_block(1) == b"", "untouched block keeps initial value"
    assert store.read_block(2) == b"two"


def test_overwrites_within_block():
    store = BlockStore.build(num_servers=3, num_blocks=2, seed=32)
    for i in range(5):
        store.write_block(1, b"gen-%d" % i)
    assert store.read_block(1) == b"gen-4"
    assert store.read_block(0) == b""


def test_many_blocks_round_trip():
    store = BlockStore.build(num_servers=4, num_blocks=16, seed=33)
    for i in range(16):
        store.write_block(i, b"payload-%02d" % i)
    for i in range(16):
        assert store.read_block(i) == b"payload-%02d" % i


def test_block_bounds_checked():
    store = BlockStore.build(num_servers=2, num_blocks=2, seed=34)
    with pytest.raises(ConfigurationError):
        store.read_block(2)
    with pytest.raises(ConfigurationError):
        store.write_block(-1, b"")
    with pytest.raises(ConfigurationError):
        BlockStore.build(num_servers=2, num_blocks=0)


def test_retry_after_block_switch_stays_in_its_block():
    """Regression: the retry of a timed-out operation must re-wrap with
    the *originating* operation's block.

    The original client host kept one machine-wide "current block" read
    again at retransmit time (``_current_reg``), so a retry issued after
    a concurrent logical client switched blocks carried the wrong
    :class:`ShardEnvelope` and wrote into a neighbouring register: here,
    client A's write of block 0 landed in block 1 and block 0 was never
    written at all.  Per-op pinning keeps both writes home.
    """
    config = ProtocolConfig(client_timeout=0.05, client_max_retries=10)
    store = BlockStore.build(num_servers=3, num_blocks=2, seed=36, protocol=config)
    host = store._client
    a = host.add_virtual_client()
    b = host.add_virtual_client()
    done = []
    # Crash the home server first: both initial sends are lost, and both
    # operations complete through timed-out retries at the next server —
    # with client B's block switch happening between A's send and A's
    # retry, exactly the interleaving that mis-routed the old code.
    store.cluster.crash_server(0)
    host.write_block(0, b"value-A", done.append, client_id=a)
    host.write_block(1, b"value-B", done.append, client_id=b)
    store.cluster.run_until(lambda: len(done) == 2)
    assert all(result.ok for result in done)
    assert store.read_block(0) == b"value-A"
    assert store.read_block(1) == b"value-B"


def test_sharded_server_restart_rejoins_every_block():
    """A restarted sharded server reloads every block from its per-block
    durable snapshots, rejoins each block's ring, and catches up on the
    writes it missed while down."""
    config = ProtocolConfig(client_timeout=0.08, client_max_retries=30)
    store = BlockStore.build(num_servers=3, num_blocks=4, seed=37, protocol=config)
    cluster = store.cluster
    for i in range(4):
        store.write_block(i, b"gen0-%d" % i)
    cluster.crash_server(1)
    cluster.run(until=cluster.now + 0.3)
    store.write_block(2, b"while-down")  # committed without s1
    cluster.restart_server(1)
    cluster.run(until=cluster.now + 1.2)

    host = cluster.servers[1]
    for reg, proto in host.protos.items():
        assert not proto.rejoining, f"block {reg} stuck rejoining"
        assert not proto.paused, f"block {reg} stuck paused"
    # Catch-up before serving: the write that happened while s1 was down
    # arrived through the fold-in merge, the rest from its own snapshots.
    assert host.protos[2].value == b"while-down"
    for i in (0, 1, 3):
        assert host.protos[i].value == b"gen0-%d" % i
    assert cluster.env.trace.counters["process.restarts"] == 1

    store.write_block(0, b"after-rejoin")
    assert store.read_block(0) == b"after-rejoin"


def test_sharded_cluster_survives_crash_cycle_under_heartbeat_detector():
    """The sharded host participates in the epoch machinery: under the
    imperfect heartbeat detector every block runs epoch-guarded
    quorum-installed views, a crashed server is excluded per block via
    suspicion, and a restarted one is folded back into every block."""
    config = ProtocolConfig(client_timeout=0.1, client_max_retries=40)
    store = BlockStore.build(
        num_servers=3, num_blocks=3, seed=38, protocol=config, fd="heartbeat"
    )
    cluster = store.cluster
    assert cluster.config.protocol.view_quorum, "heartbeat forces view_quorum"
    for i in range(3):
        store.write_block(i, b"hb-%d" % i)
    cluster.crash_server(2)
    cluster.run(until=cluster.now + 2.0)  # suspicion + per-block exclusion
    for i in range(3):
        assert store.read_block(i) == b"hb-%d" % i
    store.write_block(1, b"hb-down")
    cluster.restart_server(2)
    cluster.run(until=cluster.now + 2.5)  # announce + fold-in per block
    host = cluster.servers[2]
    for reg, proto in host.protos.items():
        assert not proto.rejoining, f"block {reg} stuck rejoining"
        assert not proto.paused, f"block {reg} stuck paused"
    assert host.protos[1].value == b"hb-down"
    store.write_block(0, b"hb-after")
    assert store.read_block(0) == b"hb-after"


def test_blocks_survive_crash():
    store = BlockStore.build(
        num_servers=4,
        num_blocks=4,
        seed=35,
        protocol=ProtocolConfig(client_timeout=0.1, client_max_retries=20),
    )
    for i in range(4):
        store.write_block(i, b"pre-crash-%d" % i)
    store.cluster.crash_server(1)
    store.cluster.run(until=store.cluster.now + 0.2)
    for i in range(4):
        assert store.read_block(i) == b"pre-crash-%d" % i
    store.write_block(2, b"post-crash")
    assert store.read_block(2) == b"post-crash"


def test_sharded_restart_keeps_initial_value_of_untouched_blocks():
    """Per-block stores persist lazily: a block never written has no
    snapshot, and its restore must fall back to the configured initial
    value rather than an empty register."""
    config = ProtocolConfig(client_timeout=0.08, client_max_retries=30)
    store = BlockStore.build(
        num_servers=2, num_blocks=2, seed=39, protocol=config,
        initial_value=b"preloaded",
    )
    cluster = store.cluster
    store.write_block(0, b"dirty")  # block 1's stores never persist
    cluster.crash_server(1)
    cluster.run(until=cluster.now + 0.3)
    cluster.restart_server(1)
    cluster.run(until=cluster.now + 1.2)
    assert cluster.servers[1].protos[1].value == b"preloaded"
    assert store.read_block(1) == b"preloaded"
    assert store.read_block(0) == b"dirty"
