"""FIG2 — the paper's Figure 2 illustration, executed step by step.

Five servers; a write W(v2) arrives at s1 while readers contact s3 and
s5:

1. during the pre-write phase, a reader at a server that has *forwarded*
   the pre-write must wait, while a server that has not yet seen it
   answers v1 immediately;
2. once the write (commit) message passes a server, its readers get v2;
3. when the commit returns to s1, the writer is acknowledged, and from
   then on every reader everywhere sees v2.

(The paper's figure numbers servers 1..5; here they are 0..4 with the
write entering at s0.)
"""

from tests.helpers import RingHarness

from repro.core.tags import Tag


def test_figure2_walkthrough():
    h = RingHarness(5)
    # Pre-populate v1 so readers have something old to see.
    h.client_write(0, b"v1", client=1)
    h.pump_until_quiet()
    h.replies.clear()

    # (1) W(v2) arrives at s0; the pre-write starts circulating.
    write_op = h.client_write(0, b"v2", client=2)
    h.pump(3)  # forwarded by s1 and s2: both now hold it pending

    read_at_s2 = h.client_read(2, client=31)  # "s3" of the figure
    read_at_s4 = h.client_read(4, client=32)  # "s5" of the figure

    # s2 forwarded the pre-write -> its reader waits; s4 has not seen
    # it -> immediate v1 (both outcomes are atomicity-safe because v2 is
    # not committed anywhere yet).
    assert h.acks_for(read_at_s2) == []
    (s4_ack,) = h.acks_for(read_at_s4)
    assert s4_ack.message.value == b"v1"

    # (2) Let the pre-write finish its circle (2 more hops), the origin
    # start the commit, and the commit reach s2 (2 hops): 4 pumps.
    h.pump(4)
    (s2_ack,) = h.acks_for(read_at_s2)
    assert s2_ack.message.value == b"v2", "the waiting reader gets v2"

    # A reader at s4 *after* s4 forwarded the pre-write but before its
    # commit arrives must wait...
    late_read_s4 = h.client_read(4, client=33)
    if h.acks_for(late_read_s4):
        # ...unless the commit already reached s4 in the same pump.
        assert h.acks_for(late_read_s4)[0].message.value == b"v2"

    # (3) Drain: the writer is acked; everyone serves v2.
    h.pump_until_quiet()
    assert len(h.acks_for(write_op)) == 1
    assert len(h.acks_for(late_read_s4)) == 1
    assert h.acks_for(late_read_s4)[0].message.value == b"v2"
    for server in h.servers:
        assert server.value == b"v2"
        assert server.tag == Tag(2, 0)


def test_no_read_inversion_during_write_window():
    """Once any reader returns v2, no later reader may return v1.

    Exercised at every intermediate step of the write's propagation.
    """
    h = RingHarness(5)
    h.client_write(0, b"v1", client=1)
    h.pump_until_quiet()
    h.client_write(0, b"v2", client=2)

    v2_seen_at = None  # pump step at which v2 was first returned
    for step in range(20):
        for server_id in range(5):
            op = h.client_read(server_id, client=40 + server_id)
            acks = h.acks_for(op)
            if not acks:
                continue
            value = acks[0].message.value
            if value == b"v2" and v2_seen_at is None:
                v2_seen_at = step
            if v2_seen_at is not None and step > v2_seen_at:
                assert value == b"v2", (
                    f"read inversion: v1 at step {step}, v2 first at {v2_seen_at}"
                )
        h.pump(1)
    h.pump_until_quiet()
    assert v2_seen_at is not None
